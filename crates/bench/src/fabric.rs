//! The distributed sweep fabric: shard a sweep over *machines*.
//!
//! Threads (PR 2) and processes (PR 4) scale a sweep inside one box;
//! this module adds the last scheduling axis from the ROADMAP. A
//! [`Coordinator`] owns the [`SweepSpec`], the merge ledger
//! ([`OutcomeLedger`]) and — optionally — an authoritative
//! [`CheckpointStore`] of finished outcomes, and serves the line
//! protocol of [`oqsc_serve::protocol`] (the worker pool's `OUTCOME`
//! lines plus `LEASE`/`RENEW`/`HEARTBEAT`/`DONE`) over a Unix or TCP
//! socket. [`fabric_work`] is the worker loop: lease a contiguous
//! instance range, re-derive the instances from the spec (nothing but
//! indices crosses the wire, exactly like process-pool workers), report
//! one `OUTCOME` line each, retire the lease with `DONE`.
//!
//! Fault tolerance is lease-based: every lease carries a TTL, renewed by
//! explicit `RENEW`s and by a per-worker `HEARTBEAT` side connection. A
//! worker that dies (SIGKILL, network partition) simply stops renewing;
//! its leases lapse and the ranges return to the open pool. Because
//! every instance is a pure function of its index, re-execution is
//! idempotent — the ledger accepts identical duplicate reports and
//! rejects conflicting ones. The same property powers **work stealing**:
//! when nothing is open, the coordinator duplicates the least-contended
//! straggler lease, so the sweep's tail is bounded by the fastest
//! worker, not the slowest.
//!
//! The merge is [`OutcomeLedger`] — the identical definition the process
//! pool uses — so fabric tables are byte-identical to `--workers N`
//! in-process tables by construction (the fabric suite and the CI smoke
//! pin this, including a run where a worker is killed mid-lease).

use crate::pool::{fleet_outcomes, OutcomeLedger, PoolError, SweepRows, SweepSpec};
use oqsc_machine::{CheckpointStore, RunOutcome};
use oqsc_serve::transport::{Listener, Stream};
use oqsc_serve::{
    fabric_request_line, fabric_response_line, parse_fabric_request, parse_fabric_response,
    FabricRequest, FabricResponse,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Instance indices are packed into the store's 64-bit instance ids as
/// `(fleet << 48) | index`; no fleet comes close to 2^48 instances.
const FABRIC_INDEX_BITS: u32 = 48;

/// Packs a `(fleet position, instance index)` pair into the synthetic
/// instance id the coordinator's durability store keys outcomes by.
pub fn fabric_instance_id(fleet: u64, index: u64) -> u64 {
    assert!(
        index < 1 << FABRIC_INDEX_BITS,
        "instance index {index} overflows the fabric id encoding"
    );
    (fleet << FABRIC_INDEX_BITS) | index
}

/// Splits a [`fabric_instance_id`] back into `(fleet, index)`.
pub fn split_fabric_instance_id(id: u64) -> (u64, u64) {
    (id >> FABRIC_INDEX_BITS, id & ((1 << FABRIC_INDEX_BITS) - 1))
}

/// The store tag a coordinator writes: it encodes the full sweep
/// identity, so resuming with a different spec fails the header check
/// instead of silently merging foreign outcomes.
fn fabric_store_tag(spec: SweepSpec) -> String {
    format!(
        "fabric/{}/k{}/t{}",
        spec.name(),
        spec.k_max(),
        spec.trials().unwrap_or(0)
    )
}

/// Coordinator policy knobs.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Instances per granted lease (clamped to ≥ 1).
    pub lease_size: usize,
    /// How long a lease survives without a `RENEW`/`HEARTBEAT`.
    pub lease_ttl: Duration,
    /// Back-off the coordinator suggests when nothing is leasable.
    pub wait_millis: u64,
    /// Persist every fresh outcome into this store — the durable
    /// completion ledger a crashed coordinator resumes from.
    pub store_path: Option<PathBuf>,
    /// Recover an existing store instead of refusing it (the fresh-run
    /// default refuses stale stores, like the process pool).
    pub resume: bool,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            lease_size: 16,
            lease_ttl: Duration::from_secs(10),
            wait_millis: 200,
            store_path: None,
            resume: false,
        }
    }
}

/// One contiguous leaseable range of a fleet.
#[derive(Clone, Copy, Debug)]
struct Chunk {
    /// Fleet position in [`SweepSpec::fleets`] order.
    fleet: usize,
    start: usize,
    end: usize,
    /// Retired: every index reported and a holder sent `DONE` (or the
    /// store already covered it at resume).
    done: bool,
    /// Live leases on this chunk (> 1 while a steal is in flight).
    leases: u32,
}

#[derive(Clone, Copy, Debug)]
struct Lease {
    chunk: usize,
    worker: u64,
    deadline: Instant,
}

/// The coordinator's whole decision state — pure with respect to time
/// (every transition takes `now`), so the lease machinery is unit
/// testable without sockets or sleeps.
pub struct FabricState {
    spec: SweepSpec,
    config: FabricConfig,
    fleets: Vec<(&'static str, usize)>,
    chunks: Vec<Chunk>,
    leases: HashMap<u64, Lease>,
    next_lease: u64,
    ledger: OutcomeLedger,
    store: Option<CheckpointStore>,
}

impl FabricState {
    /// Builds the chunk table for `spec` and, with a store path, opens
    /// (or resumes) the durable completion ledger: persisted outcomes
    /// are folded back into the merge ledger and fully-covered chunks
    /// are retired before any lease is granted.
    pub fn new(spec: SweepSpec, config: FabricConfig) -> Result<FabricState, PoolError> {
        let fleets = spec.fleets();
        let mut ledger = OutcomeLedger::new(spec);
        let tag = fabric_store_tag(spec);
        let store = match &config.store_path {
            None => None,
            Some(path) => {
                let mut store = if config.resume {
                    // The coordinator is the store's single writer, and
                    // resume only runs after the previous coordinator
                    // died — the one situation where breaking an
                    // orphaned lock is sound.
                    CheckpointStore::break_lock(path)?;
                    if path.exists() {
                        CheckpointStore::recover(path, &tag)?.0
                    } else {
                        CheckpointStore::create(path, &tag)?
                    }
                } else {
                    // Fresh runs refuse stale stores.
                    CheckpointStore::create(path, &tag)?
                };
                for (id, _position, outcome) in store.finished_outcomes()? {
                    let (fleet, index) = split_fabric_instance_id(id);
                    let name = fleets
                        .get(fleet as usize)
                        .map(|&(name, _)| name)
                        .ok_or_else(|| {
                            PoolError::Protocol(format!(
                                "store instance {id} names fleet {fleet}, which sweep {} lacks",
                                spec.name()
                            ))
                        })?;
                    ledger.merge(name, index as usize, outcome)?;
                }
                Some(store)
            }
        };
        let lease_size = config.lease_size.max(1);
        let mut chunks = Vec::new();
        for (f, &(_, count)) in fleets.iter().enumerate() {
            let mut start = 0;
            while start < count {
                let end = (start + lease_size).min(count);
                chunks.push(Chunk {
                    fleet: f,
                    start,
                    end,
                    done: ledger.range_complete(f, start, end),
                    leases: 0,
                });
                start = end;
            }
        }
        Ok(FabricState {
            spec,
            config,
            fleets,
            chunks,
            leases: HashMap::new(),
            next_lease: 1,
            ledger,
            store,
        })
    }

    /// Whether every instance of every fleet has an outcome.
    pub fn is_complete(&self) -> bool {
        self.ledger.is_complete()
    }

    /// Instances still missing an outcome.
    pub fn remaining(&self) -> usize {
        self.ledger.remaining()
    }

    /// Drops every lease whose deadline has passed; a chunk whose last
    /// lease lapsed returns to the open pool.
    fn expire(&mut self, now: Instant) {
        let lapsed: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, lease)| lease.deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in lapsed {
            let lease = self.leases.remove(&id).expect("listed above");
            self.chunks[lease.chunk].leases -= 1;
        }
    }

    fn grant_chunk(&mut self, chunk: usize, worker: u64, now: Instant) -> FabricResponse {
        let id = self.next_lease;
        self.next_lease += 1;
        self.chunks[chunk].leases += 1;
        self.leases.insert(
            id,
            Lease {
                chunk,
                worker,
                deadline: now + self.config.lease_ttl,
            },
        );
        let c = self.chunks[chunk];
        FabricResponse::Grant {
            lease: id,
            fleet: self.fleets[c.fleet].0.to_string(),
            start: c.start as u64,
            end: c.end as u64,
        }
    }

    fn grant(&mut self, worker: u64, now: Instant) -> FabricResponse {
        if self.ledger.is_complete() {
            return FabricResponse::Finished;
        }
        // First choice: an open chunk nobody is running.
        if let Some(open) =
            (0..self.chunks.len()).find(|&c| !self.chunks[c].done && self.chunks[c].leases == 0)
        {
            return self.grant_chunk(open, worker, now);
        }
        // Nothing open: steal from a straggler by duplicating the
        // least-contended leased chunk this worker is not already on
        // (re-execution is idempotent, so the tail is bounded by the
        // fastest worker, not the slowest).
        let held: Vec<usize> = self
            .leases
            .values()
            .filter(|l| l.worker == worker)
            .map(|l| l.chunk)
            .collect();
        let steal = (0..self.chunks.len())
            .filter(|&c| !self.chunks[c].done && self.chunks[c].leases > 0 && !held.contains(&c))
            .min_by_key(|&c| (self.chunks[c].leases, c));
        match steal {
            Some(chunk) => self.grant_chunk(chunk, worker, now),
            None => FabricResponse::Wait {
                millis: self.config.wait_millis,
            },
        }
    }

    /// Applies one request at time `now`. `Err` carries a protocol-level
    /// message the connection renders as an `ERR` line.
    pub fn handle(
        &mut self,
        request: &FabricRequest,
        now: Instant,
    ) -> Result<FabricResponse, String> {
        self.expire(now);
        match request {
            FabricRequest::Lease {
                worker,
                sweep,
                k_max,
                trials,
            } => {
                let want = (
                    self.spec.name(),
                    self.spec.k_max(),
                    self.spec.trials().unwrap_or(0) as u64,
                );
                if (sweep.as_str(), *k_max, *trials) != want {
                    return Err(format!(
                        "worker sweep {sweep}/k{k_max}/t{trials} does not match \
                         coordinator sweep {}/k{}/t{}",
                        want.0, want.1, want.2
                    ));
                }
                Ok(self.grant(*worker, now))
            }
            FabricRequest::Renew { lease } => match self.leases.get_mut(lease) {
                Some(l) => {
                    l.deadline = now + self.config.lease_ttl;
                    Ok(FabricResponse::Ok { token: *lease })
                }
                None => Ok(FabricResponse::Expired { lease: *lease }),
            },
            FabricRequest::Heartbeat { worker } => {
                let deadline = now + self.config.lease_ttl;
                for lease in self.leases.values_mut().filter(|l| l.worker == *worker) {
                    lease.deadline = deadline;
                }
                Ok(FabricResponse::Ok { token: *worker })
            }
            FabricRequest::Outcome {
                fleet,
                index,
                outcome,
            } => {
                let fresh = self
                    .ledger
                    .merge(fleet, *index as usize, *outcome)
                    .map_err(|e| e.to_string())?;
                if fresh {
                    if let Some(store) = &mut self.store {
                        let f = self.ledger.fleet_index(fleet).expect("merge checked it") as u64;
                        store
                            .append_outcome(fabric_instance_id(f, *index), 0, outcome)
                            .map_err(|e| format!("coordinator store append failed: {e}"))?;
                    }
                }
                Ok(FabricResponse::Ok { token: *index })
            }
            FabricRequest::Done { lease } => {
                let Some(&Lease { chunk, .. }) = self.leases.get(lease) else {
                    return Ok(FabricResponse::Expired { lease: *lease });
                };
                let c = self.chunks[chunk];
                if !self.ledger.range_complete(c.fleet, c.start, c.end) {
                    return Err(format!(
                        "DONE {lease} before range {}..{} of fleet {} was fully reported",
                        c.start, c.end, self.fleets[c.fleet].0
                    ));
                }
                self.chunks[chunk].done = true;
                // Retire every lease on the chunk, the finisher's and any
                // straggler's — their next RENEW answers EXPIRED, telling
                // them to abandon the duplicated work.
                let retired: Vec<u64> = self
                    .leases
                    .iter()
                    .filter(|(_, l)| l.chunk == chunk)
                    .map(|(&id, _)| id)
                    .collect();
                for id in retired {
                    self.leases.remove(&id);
                }
                self.chunks[chunk].leases = 0;
                Ok(FabricResponse::Ok { token: *lease })
            }
        }
    }

    /// Folds the completed ledger into table rows.
    pub fn finish(self) -> Result<SweepRows, PoolError> {
        self.ledger.into_rows()
    }
}

fn lock_state<'a>(state: &'a Mutex<FabricState>) -> std::sync::MutexGuard<'a, FabricState> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Serves one worker connection: request line in, response line out,
/// until the peer hangs up. Reads poll on a short timeout and preserve
/// partial lines across timeouts (the serve front end's slow-client
/// fix), so a worker trickling bytes never gets a corrupted request.
fn handle_fabric_connection(stream: Stream, state: &Mutex<FabricState>, done: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // worker hung up
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Partial request bytes stay in `line` for the next
                // poll. Workers always disconnect after FINISHED, so the
                // connection drains itself; no forced close.
                continue;
            }
            Err(_) => return,
        }
        let request = line.trim().to_string();
        line.clear();
        if request.is_empty() {
            continue;
        }
        let response = match parse_fabric_request(&request) {
            Err(msg) => format!("ERR {msg}"),
            Ok(req) => {
                let mut st = lock_state(state);
                let answer = match st.handle(&req, Instant::now()) {
                    Ok(resp) => fabric_response_line(&resp),
                    Err(msg) => format!("ERR {msg}"),
                };
                if st.is_complete() {
                    done.store(true, Ordering::SeqCst);
                }
                answer
            }
        };
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

/// A bound, not-yet-running coordinator. Binding is separate from
/// running so callers (the CLI, tests binding `127.0.0.1:0`) can learn
/// the address and report readiness before blocking.
pub struct Coordinator {
    listener: Listener,
    state: FabricState,
}

impl Coordinator {
    /// Binds `addr` (a Unix socket path, or `host:port` when it
    /// contains a `:`) and builds the lease state — including store
    /// recovery when [`FabricConfig::resume`] is set.
    pub fn bind(
        addr: &str,
        spec: SweepSpec,
        config: FabricConfig,
    ) -> Result<Coordinator, PoolError> {
        let state = FabricState::new(spec, config)?;
        let listener = Listener::bind(addr)?;
        Ok(Coordinator { listener, state })
    }

    /// The bound address (the actual port when `addr` was `host:0`).
    pub fn local_addr(&self) -> String {
        self.listener.local_addr()
    }

    /// Serves lease traffic until every instance of the sweep has an
    /// outcome, then merges the ledger into table rows — the identical
    /// merge the process pool runs, so the table is byte-identical to
    /// `--workers N`. A sweep whose store already covers everything
    /// (a resumed, finished run) returns immediately without serving.
    pub fn run(self) -> Result<SweepRows, PoolError> {
        let Coordinator { listener, state } = self;
        listener.set_nonblocking(true)?;
        let done = AtomicBool::new(state.is_complete());
        let state = Mutex::new(state);
        std::thread::scope(|scope| {
            while !done.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok(stream) => {
                        let state = &state;
                        let done = &done;
                        scope.spawn(move || handle_fabric_connection(stream, state, done));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            // The scope joins the open connections: each drains at its
            // worker's disconnect (every worker ends on FINISHED or an
            // abandoned lease, then hangs up).
        });
        if let Some(path) = listener.unix_path() {
            let _ = std::fs::remove_file(path);
        }
        state
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .finish()
    }
}

/// Binds and runs a coordinator in one call — the
/// `experiments --fabric-coordinate` entry point.
pub fn fabric_coordinate(
    addr: &str,
    spec: SweepSpec,
    config: FabricConfig,
) -> Result<SweepRows, PoolError> {
    Coordinator::bind(addr, spec, config)?.run()
}

/// Worker loop knobs.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// This worker's id (leases and heartbeats are keyed by it; default
    /// the process id).
    pub worker_id: u64,
    /// Batch-scheduler threads for running a leased range.
    pub threads: usize,
    /// Testing/straggler hook: run one instance at a time with this
    /// pause between instances, renewing the lease after each — the
    /// deterministic slow worker the steal path is exercised with.
    pub throttle: Option<Duration>,
    /// Heartbeat period on the side connection.
    pub heartbeat_every: Duration,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            worker_id: std::process::id() as u64,
            threads: 1,
            throttle: None,
            heartbeat_every: Duration::from_secs(2),
        }
    }
}

/// What one worker did, for the operator's log line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricWorkReport {
    /// Leases granted to this worker.
    pub leases: u64,
    /// Instances computed and reported.
    pub instances: u64,
    /// Leases that expired under this worker (abandoned mid-range after
    /// a steal or a stall).
    pub expired: u64,
}

/// One line-protocol client connection: request out, response in.
struct LineClient {
    writer: Stream,
    reader: BufReader<Stream>,
}

impl LineClient {
    fn connect(addr: &str) -> std::io::Result<LineClient> {
        let writer = Stream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(LineClient { writer, reader })
    }

    fn ask(&mut self, request: &FabricRequest) -> Result<FabricResponse, PoolError> {
        self.writer
            .write_all(format!("{}\n", fabric_request_line(request)).as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(PoolError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "coordinator hung up mid-exchange",
            )));
        }
        let line = line.trim();
        if let Some(msg) = line.strip_prefix("ERR ") {
            return Err(PoolError::Protocol(format!("coordinator refused: {msg}")));
        }
        parse_fabric_response(line).map_err(PoolError::Protocol)
    }

    fn report_outcome(
        &mut self,
        fleet: &str,
        index: u64,
        outcome: RunOutcome,
    ) -> Result<(), PoolError> {
        match self.ask(&FabricRequest::Outcome {
            fleet: fleet.to_string(),
            index,
            outcome,
        })? {
            FabricResponse::Ok { .. } => Ok(()),
            other => Err(PoolError::Protocol(format!(
                "unexpected response to OUTCOME: {other:?}"
            ))),
        }
    }
}

/// Runs one granted lease. A throttled worker computes one instance at a
/// time and renews after each, abandoning the range the moment a renew
/// answers `EXPIRED` (its chunk was stolen and finished, or its TTL
/// lapsed); an unthrottled worker computes the whole range across its
/// threads, streams the outcomes, and retires the lease.
fn run_lease(
    client: &mut LineClient,
    spec: SweepSpec,
    config: &WorkerConfig,
    report: &mut FabricWorkReport,
    lease: u64,
    fleet: &str,
    range: std::ops::Range<u64>,
) -> Result<(), PoolError> {
    let range: Vec<usize> = (range.start as usize..range.end as usize).collect();
    match config.throttle {
        Some(pause) => {
            for &idx in &range {
                let outcomes = fleet_outcomes(spec, fleet, &[idx], 1)?;
                std::thread::sleep(pause);
                client.report_outcome(fleet, idx as u64, outcomes[0])?;
                report.instances += 1;
                match client.ask(&FabricRequest::Renew { lease })? {
                    FabricResponse::Ok { .. } => {}
                    FabricResponse::Expired { .. } => {
                        report.expired += 1;
                        return Ok(());
                    }
                    other => {
                        return Err(PoolError::Protocol(format!(
                            "unexpected response to RENEW: {other:?}"
                        )))
                    }
                }
            }
        }
        None => {
            let outcomes = fleet_outcomes(spec, fleet, &range, config.threads)?;
            for (&idx, outcome) in range.iter().zip(&outcomes) {
                client.report_outcome(fleet, idx as u64, *outcome)?;
                report.instances += 1;
            }
        }
    }
    match client.ask(&FabricRequest::Done { lease })? {
        // EXPIRED here means another worker's DONE retired the chunk
        // first — the work still landed (as idempotent duplicates).
        FabricResponse::Ok { .. } | FabricResponse::Expired { .. } => Ok(()),
        other => Err(PoolError::Protocol(format!(
            "unexpected response to DONE: {other:?}"
        ))),
    }
}

/// Best-effort heartbeat on a side connection: renews every lease the
/// worker holds, so a long-running range never starves its deadline.
/// Any failure simply ends the thread — explicit `RENEW`s and lease
/// re-grants cover for a lost heartbeat channel.
fn heartbeat_loop(addr: &str, worker: u64, every: Duration, stop: &AtomicBool) {
    let Ok(mut client) = LineClient::connect(addr) else {
        return;
    };
    while !stop.load(Ordering::SeqCst) {
        if client.ask(&FabricRequest::Heartbeat { worker }).is_err() {
            return;
        }
        // Sleep in small steps so worker exit is not delayed by a
        // full heartbeat period.
        let mut slept = Duration::ZERO;
        while slept < every && !stop.load(Ordering::SeqCst) {
            let step = Duration::from_millis(50).min(every - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}

/// The fabric worker loop — the `experiments --fabric-work` entry
/// point. Connects to the coordinator at `addr`, leases ranges of
/// `spec`, re-derives and runs the instances locally, reports their
/// outcomes, and exits when the coordinator answers `FINISHED`.
pub fn fabric_work(
    addr: &str,
    spec: SweepSpec,
    config: &WorkerConfig,
) -> Result<FabricWorkReport, PoolError> {
    let mut client = LineClient::connect(addr)?;
    let mut report = FabricWorkReport::default();
    let stop = AtomicBool::new(false);
    let result = std::thread::scope(|scope| {
        scope.spawn(|| heartbeat_loop(addr, config.worker_id, config.heartbeat_every, &stop));
        let lease_request = FabricRequest::Lease {
            worker: config.worker_id,
            sweep: spec.name().to_string(),
            k_max: spec.k_max(),
            trials: spec.trials().unwrap_or(0) as u64,
        };
        let run = loop {
            match client.ask(&lease_request) {
                Ok(FabricResponse::Finished) => break Ok(()),
                Ok(FabricResponse::Wait { millis }) => {
                    std::thread::sleep(Duration::from_millis(millis.min(1000)))
                }
                Ok(FabricResponse::Grant {
                    lease,
                    fleet,
                    start,
                    end,
                }) => {
                    report.leases += 1;
                    if let Err(e) = run_lease(
                        &mut client,
                        spec,
                        config,
                        &mut report,
                        lease,
                        &fleet,
                        start..end,
                    ) {
                        break Err(e);
                    }
                }
                Ok(other) => {
                    break Err(PoolError::Protocol(format!(
                        "unexpected response to LEASE: {other:?}"
                    )))
                }
                Err(e) => break Err(e),
            }
        };
        stop.store(true, Ordering::SeqCst);
        run
    });
    result.map(|()| report)
}
