//! Regenerates every experiment table of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p oqsc-bench --bin experiments \
//!     [-- --workers N] [--checkpoint-every N]
//! ```
//!
//! `--workers N` sizes the batch scheduler's worker fleet for the
//! decider sweeps (E6, F1, F3, F4; default: the machine's available
//! parallelism). `--checkpoint-every N` switches those sweeps to the
//! migrating session schedule: every decider is suspended after each
//! segment of `N` tokens, serialized into a checkpoint (classical
//! configuration + quantum register snapshot + metering), handed to the
//! next worker, and resumed there. Every table is a pure function of its
//! seeds, so the numbers are identical at any worker count and any
//! checkpoint cadence — only the wall clock changes.
//!
//! Out-of-range values are rejected up front with a clear message
//! (`--workers 0`, a worker fleet beyond [`MAX_WORKERS`], a zero
//! checkpoint interval, or a non-numeric argument), never silently
//! clamped or panicked on.

use oqsc_machine::{BatchRunner, SessionSchedule};

/// Upper bound on `--workers`: far above any real machine, low enough to
/// catch a mistyped value before it spawns a few million threads.
const MAX_WORKERS: usize = 4096;

struct Cli {
    runner: BatchRunner,
    schedule: SessionSchedule,
}

fn usage_and_exit(code: i32) -> ! {
    println!("usage: experiments [--workers N] [--checkpoint-every N]");
    println!("  --workers N           batch workers, 1..={MAX_WORKERS} (default: available cores)");
    println!("  --checkpoint-every N  suspend/migrate/resume every N tokens, N >= 1");
    println!("                        (default: uninterrupted sessions)");
    std::process::exit(code);
}

fn bad_value(flag: &str, value: Option<String>, expected: &str) -> ! {
    match value {
        Some(v) => eprintln!("error: {flag} {v}: expected {expected}"),
        None => eprintln!("error: {flag} requires a value ({expected})"),
    }
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut workers: Option<usize> = None;
    let mut checkpoint_every: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let raw = args.next();
                match raw.as_deref().map(str::parse::<usize>) {
                    Some(Ok(n)) if (1..=MAX_WORKERS).contains(&n) => workers = Some(n),
                    _ => bad_value(
                        "--workers",
                        raw,
                        &format!("an integer between 1 and {MAX_WORKERS}"),
                    ),
                }
            }
            "--checkpoint-every" => {
                let raw = args.next();
                match raw.as_deref().map(str::parse::<usize>) {
                    Some(Ok(n)) if n >= 1 => checkpoint_every = Some(n),
                    _ => bad_value("--checkpoint-every", raw, "a positive token count"),
                }
            }
            "--help" | "-h" => usage_and_exit(0),
            other => {
                eprintln!("error: unknown argument: {other}");
                usage_and_exit(2);
            }
        }
    }
    Cli {
        runner: workers.map_or_else(BatchRunner::available, BatchRunner::new),
        schedule: checkpoint_every.map_or(
            SessionSchedule::Uninterrupted,
            SessionSchedule::MigrateEvery,
        ),
    }
}

fn main() {
    let cli = parse_cli();
    let schedule_desc = match cli.schedule {
        SessionSchedule::Uninterrupted => "uninterrupted sessions".to_string(),
        SessionSchedule::MigrateEvery(n) => {
            format!("suspend/migrate/resume every {n} tokens")
        }
    };
    println!(
        "== Reproduction experiments: Le Gall, SPAA 2006 ({} batch worker{}, {schedule_desc}) ==\n",
        cli.runner.workers(),
        if cli.runner.workers() == 1 { "" } else { "s" }
    );
    oqsc_bench::print_e1();
    oqsc_bench::print_e2();
    oqsc_bench::print_e3();
    oqsc_bench::print_e4();
    oqsc_bench::print_e5();
    oqsc_bench::print_e6(&cli.runner, cli.schedule);
    oqsc_bench::print_f1(&cli.runner, cli.schedule);
    oqsc_bench::print_f2();
    oqsc_bench::print_f3(&cli.runner, cli.schedule);
    oqsc_bench::print_f4(&cli.runner, cli.schedule);
    oqsc_bench::print_ablations();
}
