//! Regenerates every experiment table of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p oqsc-bench --bin experiments [-- --workers N]
//! ```
//!
//! `--workers N` sizes the batch scheduler's worker fleet for the
//! decider sweeps (E6, F3, F4; default: the machine's available
//! parallelism). Every table is a pure function of its seeds, so the
//! numbers are identical at any worker count — only the wall-clock
//! changes.

use oqsc_machine::BatchRunner;

fn parse_workers() -> BatchRunner {
    let mut workers: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => workers = Some(n),
                _ => {
                    eprintln!("--workers expects a positive integer");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: experiments [--workers N]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    workers.map_or_else(BatchRunner::available, BatchRunner::new)
}

fn main() {
    let runner = parse_workers();
    println!(
        "== Reproduction experiments: Le Gall, SPAA 2006 ({} batch worker{}) ==\n",
        runner.workers(),
        if runner.workers() == 1 { "" } else { "s" }
    );
    oqsc_bench::print_e1();
    oqsc_bench::print_e2();
    oqsc_bench::print_e3();
    oqsc_bench::print_e4();
    oqsc_bench::print_e5();
    oqsc_bench::print_e6(&runner);
    oqsc_bench::print_f1();
    oqsc_bench::print_f2();
    oqsc_bench::print_f3(&runner);
    oqsc_bench::print_f4(&runner);
    oqsc_bench::print_ablations();
}
