//! Regenerates every experiment table of `EXPERIMENTS.md` — and drives
//! single sweeps in-process, across OS worker processes, and through
//! the persistent checkpoint store.
//!
//! ```text
//! # all tables (classic mode)
//! cargo run --release -p oqsc-bench --bin experiments \
//!     [-- --workers N] [--checkpoint-every N]
//!
//! # one sweep, optionally sharded over worker processes and/or
//! # persisted so a killed run can resume
//! experiments --sweep e6|f1|f3|f4 [--k-max K] [--trials T] [--workers N]
//!             [--processes P] [--store PREFIX [--resume]]
//!             [--checkpoint-every N]
//!
//! # rewrite resume-heavy store files down to one record per instance
//! experiments --compact PREFIX [--break-locks]
//!
//! # per-file record/dedupe/compression report for existing stores
//! experiments --store-stats PREFIX [--break-locks]
//!
//! # session-multiplexing server (Unix socket or TCP), and its driver
//! experiments --serve ADDR [--workers N] [--live-budget BYTES]
//!             [--eviction lru|gdsf] [--spill-store PATH]
//!             [--read-timeout-ms T]
//! experiments --drive ADDR [--feeds] [--drive-phase 1|2]
//! experiments --drive-direct       # same fleet, no server — for cmp
//! experiments --shutdown ADDR
//!
//! # consistent-hash router fronting N --serve engines
//! experiments --route ADDR --engines A1,A2,... [--workers N]
//!             [--read-timeout-ms T]
//! ```
//!
//! `--workers N` sizes the in-process batch scheduler's worker fleet
//! for the decider sweeps (E6, F1, F3, F4; default: the machine's
//! available parallelism). `--checkpoint-every N` without a store
//! switches those sweeps to the migrating session schedule (suspend /
//! serialize / migrate / resume every `N` tokens); with `--store` it is
//! the persistence cadence instead. Every table is a pure function of
//! its seeds, so the numbers are identical at any worker count, any
//! process count, and any checkpoint cadence — only the wall clock
//! changes.
//!
//! `--sweep` mode additionally accepts:
//!
//! * `--trials T` — Monte-Carlo fleet size for the f3/f4 sweeps
//!   (rejected for e6/f1, whose fleets are sized by `--k-max` alone).
//! * `--processes P` — shard the sweep over `P` OS worker processes
//!   (this same binary re-executed in `--worker` mode); the merged
//!   table is byte-identical to the in-process one.
//! * `--store PREFIX` — persist checkpoints every `--checkpoint-every`
//!   tokens into per-shard store files `PREFIX.<fleet>.shard<w>of<P>.cps`,
//!   plus an outcome record whenever an instance finishes, so a resumed
//!   sweep skips finished instances outright. A fresh run refuses stale
//!   store files; pass `--resume` to recover them (salvaging any
//!   crash-truncated tail) and continue from the last persisted
//!   boundaries.
//! * `--crash-after-tokens T` — testing hook: stop dead after feeding
//!   `T` tokens per fleet (exit code 9), simulating a kill; a later
//!   `--resume` run completes the sweep with the identical table.
//!
//! `--compact PREFIX` rewrites every store file under the prefix down
//! to one record per instance (its outcome if finished, its latest
//! checkpoint otherwise) via an atomic rename — resume-heavy stores
//! shrink, subsequent `--resume` runs are bit-identical. Compacting a
//! legacy v2 store upgrades it in place to the current compressed v3
//! format. Add `--break-locks` to clear `.lock` files orphaned by
//! killed writers first (only sound once those writers are known dead).
//!
//! `--store-stats PREFIX` prints one line per store file under the
//! prefix: format version, record counts (full vs dedupe-ref and the
//! dedupe hit rate), stored vs uncompressed payload bytes and the
//! compression ratio — the same columns the `--compact` report shows
//! before/after. `--store-format 2` makes a `--store` sweep write its
//! fresh shard stores in the legacy v2 format (raw payloads), which is
//! how CI exercises the v2 → v3 upgrade path end to end.
//!
//! `--serve ADDR` runs the `oqsc-serve` session-multiplexing engine
//! behind its line protocol — `ADDR` is a Unix socket path, or
//! `host:port` for TCP (`--workers N` sizes the connection-handler
//! pool) — until a client sends `SHUTDOWN`. `--eviction lru|gdsf`
//! picks the live-tier eviction policy, `--spill-store PATH` attaches a
//! durable spill tier (mid-stream sessions are flushed there on
//! shutdown and rehydrated by the next `--serve` on the same path), and
//! `--read-timeout-ms T` tunes the per-connection read poll. `--drive
//! ADDR` opens the deterministic 32-session demo fleet over that
//! address — every decider kind, member and non-member words — and
//! prints one `OUTCOME` line per session; `--feeds` sends each word as
//! one pipelined batched `FEEDS` line instead of chunked `FEED`s, and
//! `--drive-phase 1|2` splits the drive across two invocations (phase 1
//! feeds the first half of every word and stops without finishing;
//! phase 2 reopens nothing, feeds the rest and prints the outcomes —
//! the restart-from-spill smoke). `--drive-direct` prints the same
//! lines from uninterrupted in-process runs, so `cmp` between the two
//! outputs is the end-to-end byte-identity check CI runs. `--shutdown
//! ADDR` stops a running server. `--route ADDR --engines A1,A2,...`
//! runs the consistent-hash router: it speaks the same line protocol on
//! `ADDR` and forwards each session's verbs to the engine its id hashes
//! to, so `--drive` against the router is byte-identical to a single
//! direct engine.
//!
//! Out-of-range values are rejected up front with a clear message,
//! never silently clamped or panicked on.

use oqsc_bench::fabric::{fabric_work, Coordinator, FabricConfig, WorkerConfig};
use oqsc_bench::pool::{
    find_store_files, worker_outcomes, PoolError, PoolRunOpts, ShardId, SweepSpec,
};
use oqsc_bench::{emit_outcomes, ProcessPool, WORKER_CRASH_EXIT};
use oqsc_machine::{BatchRunner, CheckpointStore, SessionSchedule, StoreError};
use oqsc_serve::{
    direct_outcome_lines, drive_fleet, shutdown_socket, stats_line, DrivePhase, EvictionPolicy,
    FeedMode, Router, RouterConfig, Server, ServerConfig,
};

/// Upper bound on `--workers`: far above any real machine, low enough to
/// catch a mistyped value before it spawns a few million threads.
const MAX_WORKERS: usize = 4096;

/// Upper bound on `--processes` (same rationale, for OS processes).
const MAX_PROCESSES: usize = 256;

/// Upper bound on `--k-max`: `k = 8` already streams 5·10⁷ symbols.
const MAX_K: u32 = 8;

/// Upper bound on `--trials` (a million Monte-Carlo instances per fleet
/// is already far past any table in the paper).
const MAX_TRIALS: usize = 1_000_000;

/// Default persistence cadence when `--store` is given without an
/// explicit `--checkpoint-every`.
const DEFAULT_PERSIST_EVERY: usize = 4096;

/// Base seed for the `--drive` / `--drive-direct` demo fleet. Fixed so
/// the two outputs are comparable across separate process invocations
/// (the CI smoke `cmp`s them).
const DRIVE_SEED: u64 = 0x0D21F7;

/// Default instances per fabric lease.
const DEFAULT_LEASE_SIZE: usize = 16;

/// Upper bound on `--lease-size` (a lease far wider than any fleet just
/// degrades to one worker doing everything).
const MAX_LEASE_SIZE: usize = 1 << 20;

/// Default fabric lease TTL in milliseconds.
const DEFAULT_LEASE_TTL_MS: u64 = 10_000;

/// Upper bound on `--read-timeout-ms`: a poll longer than a minute just
/// delays shutdown without helping any real client.
const MAX_READ_TIMEOUT_MS: u64 = 60_000;

struct Cli {
    runner: BatchRunner,
    schedule: SessionSchedule,
    workers: Option<usize>,
    sweep: Option<String>,
    k_max: Option<u32>,
    trials: Option<usize>,
    processes: Option<usize>,
    store: Option<std::path::PathBuf>,
    resume: bool,
    crash_after_tokens: Option<u64>,
    checkpoint_every: Option<usize>,
    worker: bool,
    shard: Option<usize>,
    of: Option<usize>,
    compact: Option<std::path::PathBuf>,
    store_stats: Option<std::path::PathBuf>,
    store_format: Option<u8>,
    break_locks: bool,
    bench_json: Option<std::path::PathBuf>,
    bench_reduced: bool,
    serve: Option<String>,
    live_budget: Option<usize>,
    eviction: Option<EvictionPolicy>,
    spill_store: Option<std::path::PathBuf>,
    read_timeout_ms: Option<u64>,
    route: Option<String>,
    engines: Option<Vec<String>>,
    drive: Option<String>,
    feeds: bool,
    drive_phase: Option<DrivePhase>,
    drive_direct: bool,
    shutdown: Option<String>,
    fabric_coordinate: Option<String>,
    fabric_work: Option<String>,
    lease_size: Option<usize>,
    lease_ttl_ms: Option<u64>,
    worker_id: Option<u64>,
    fabric_throttle_ms: Option<u64>,
}

fn usage_and_exit(code: i32) -> ! {
    println!("usage: experiments [--workers N] [--checkpoint-every N]");
    println!("       experiments --sweep e6|f1|f3|f4 [--k-max K] [--trials T] [--workers N]");
    println!(
        "                   [--processes P] [--store PREFIX [--resume]] [--checkpoint-every N]"
    );
    println!("       experiments --compact PREFIX [--break-locks]");
    println!("       experiments --store-stats PREFIX [--break-locks]");
    println!("       experiments --bench-json PATH [--bench-reduced]");
    println!("       experiments --serve ADDR [--workers N] [--live-budget BYTES]");
    println!("                   [--eviction lru|gdsf] [--spill-store PATH] [--read-timeout-ms T]");
    println!("       experiments --route ADDR --engines A1,A2,... [--workers N]");
    println!("                   [--read-timeout-ms T]");
    println!("       experiments --drive ADDR [--feeds] [--drive-phase 1|2]");
    println!("       experiments --drive-direct | --shutdown ADDR");
    println!("       experiments --sweep NAME --fabric-coordinate ADDR [--store PATH [--resume]]");
    println!("                   [--lease-size N] [--lease-ttl-ms T]");
    println!("       experiments --sweep NAME --fabric-work ADDR [--workers N]");
    println!("                   [--worker-id N] [--fabric-throttle-ms T]");
    println!(
        "  --workers N            batch workers, 1..={MAX_WORKERS} (default: available cores)"
    );
    println!("  --checkpoint-every N   suspend/migrate/resume every N tokens, N >= 1;");
    println!("                         with --store: the persistence cadence (default {DEFAULT_PERSIST_EVERY})");
    println!("  --sweep e6|f1|f3|f4    run one sweep and print its table");
    println!("  --k-max K              sweep size, 1..={MAX_K} (default: e6 7, f1 8, f3 3, f4 4)");
    println!("  --trials T             f3/f4 Monte-Carlo fleet size, 1..={MAX_TRIALS}");
    println!("                         (default: f3 4000, f4 400; rejected for e6/f1)");
    println!(
        "  --processes P          shard the sweep over P worker processes, 1..={MAX_PROCESSES}"
    );
    println!("  --store PREFIX         persist checkpoints + finished outcomes to");
    println!("                         PREFIX.<fleet>.shard<w>of<P>.cps");
    println!("  --resume               recover existing shard stores, skip finished instances,");
    println!("                         and continue");
    println!("  --crash-after-tokens T testing hook: die after T tokens per fleet (needs --store)");
    println!("  --store-format 2|3     with --store: format for fresh shard stores");
    println!("                         (default 3; 2 writes legacy uncompressed logs)");
    println!("  --compact PREFIX       rewrite each store under PREFIX to one record per");
    println!("                         instance (atomic rename); resumes stay bit-identical;");
    println!("                         legacy v2 stores are upgraded to compressed v3");
    println!("  --store-stats PREFIX   print records / dedupe / compression per store file");
    println!("  --break-locks          with --compact or --store-stats: clear orphaned");
    println!("                         .lock files first");
    println!("  --bench-json PATH      run the SIMD kernel micro-benchmarks (scalar vs");
    println!("                         auto dispatch) and write the JSON record to PATH");
    println!("  --bench-reduced        with --bench-json: shrink sizes for a CI smoke run");
    println!("  --serve ADDR           run the session-multiplexing server on a Unix socket");
    println!("                         path or host:port (--workers N sizes its");
    println!("                         connection-handler pool)");
    println!("  --live-budget BYTES    with --serve: hot-tier byte budget for live sessions");
    println!("                         (default 64 MiB; 0 = suspend after every feed)");
    println!("  --eviction lru|gdsf    with --serve: live-tier eviction policy");
    println!(
        "                         (default {})",
        EvictionPolicy::default().name()
    );
    println!("  --spill-store PATH     with --serve: durable spill tier; mid-stream sessions");
    println!("                         are flushed there on SHUTDOWN and rehydrated by the");
    println!("                         next --serve on the same path");
    println!("  --read-timeout-ms T    with --serve/--route: per-connection read poll,");
    println!("                         1..={MAX_READ_TIMEOUT_MS} (default 50)");
    println!("  --route ADDR           run the consistent-hash router on ADDR, fronting the");
    println!("                         --engines fleet behind the same line protocol");
    println!("  --engines A1,A2,...    with --route: the backend engine addresses");
    println!("  --drive ADDR           run the demo fleet through a --serve server (or a");
    println!("                         --route front) and print one OUTCOME line per session");
    println!("  --feeds                with --drive: send each word as one pipelined batched");
    println!("                         FEEDS line instead of chunked FEEDs");
    println!("  --drive-phase 1|2      with --drive: split the drive across two invocations");
    println!("                         (1 = feed first halves, no finish; 2 = feed the rest");
    println!("                         without reopening, print outcomes)");
    println!("  --drive-direct         print the same OUTCOME lines from uninterrupted");
    println!("                         in-process runs (cmp against --drive)");
    println!("  --shutdown ADDR        stop a running --serve server or --route router");
    println!("  --fabric-coordinate ADDR  run the distributed-sweep coordinator on ADDR");
    println!("                         (a Unix socket path, or host:port for TCP) until the");
    println!("                         sweep completes, then print its table; --store makes");
    println!("                         the outcome ledger durable (--resume recovers it)");
    println!("  --fabric-work ADDR     run a fabric worker against the coordinator at ADDR");
    println!("                         (--workers N threads per leased range)");
    println!("  --lease-size N         coordinator: instances per lease, 1..={MAX_LEASE_SIZE}");
    println!("                         (default {DEFAULT_LEASE_SIZE})");
    println!("  --lease-ttl-ms T       coordinator: lease TTL without renewal, T >= 1");
    println!("                         (default {DEFAULT_LEASE_TTL_MS})");
    println!("  --worker-id N          worker: lease/heartbeat identity (default: process id)");
    println!("  --fabric-throttle-ms T worker: run one instance at a time with a T ms pause");
    println!("                         (straggler mode — exercises re-lease and work stealing)");
    std::process::exit(code);
}

fn bad_value(flag: &str, value: Option<String>, expected: &str) -> ! {
    match value {
        Some(v) => eprintln!("error: {flag} {v}: expected {expected}"),
        None => eprintln!("error: {flag} requires a value ({expected})"),
    }
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
    expected: &str,
    ok: impl Fn(&T) -> bool,
) -> T {
    let raw = args.next();
    match raw.as_deref().map(str::parse::<T>) {
        Some(Ok(n)) if ok(&n) => n,
        _ => bad_value(flag, raw, expected),
    }
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        runner: BatchRunner::available(),
        schedule: SessionSchedule::Uninterrupted,
        workers: None,
        sweep: None,
        k_max: None,
        trials: None,
        processes: None,
        store: None,
        resume: false,
        crash_after_tokens: None,
        checkpoint_every: None,
        worker: false,
        shard: None,
        of: None,
        compact: None,
        store_stats: None,
        store_format: None,
        break_locks: false,
        bench_json: None,
        bench_reduced: false,
        serve: None,
        live_budget: None,
        eviction: None,
        spill_store: None,
        read_timeout_ms: None,
        route: None,
        engines: None,
        drive: None,
        feeds: false,
        drive_phase: None,
        drive_direct: false,
        shutdown: None,
        fabric_coordinate: None,
        fabric_work: None,
        lease_size: None,
        lease_ttl_ms: None,
        worker_id: None,
        fabric_throttle_ms: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                cli.workers = Some(parse_num(
                    &mut args,
                    "--workers",
                    &format!("an integer between 1 and {MAX_WORKERS}"),
                    |n: &usize| (1..=MAX_WORKERS).contains(n),
                ));
            }
            "--checkpoint-every" => {
                cli.checkpoint_every = Some(parse_num(
                    &mut args,
                    "--checkpoint-every",
                    "a positive token count",
                    |n: &usize| *n >= 1,
                ));
            }
            "--sweep" => match args.next() {
                Some(name) if ["e6", "f1", "f3", "f4"].contains(&name.as_str()) => {
                    cli.sweep = Some(name)
                }
                raw => bad_value("--sweep", raw, "one of: e6, f1, f3, f4"),
            },
            "--k-max" => {
                cli.k_max = Some(parse_num(
                    &mut args,
                    "--k-max",
                    &format!("an integer between 1 and {MAX_K}"),
                    |n: &u32| (1..=MAX_K).contains(n),
                ));
            }
            "--trials" => {
                cli.trials = Some(parse_num(
                    &mut args,
                    "--trials",
                    &format!("an integer between 1 and {MAX_TRIALS}"),
                    |n: &usize| (1..=MAX_TRIALS).contains(n),
                ));
            }
            "--processes" => {
                cli.processes = Some(parse_num(
                    &mut args,
                    "--processes",
                    &format!("an integer between 1 and {MAX_PROCESSES}"),
                    |n: &usize| (1..=MAX_PROCESSES).contains(n),
                ));
            }
            "--store" => match args.next() {
                Some(p) if !p.is_empty() => cli.store = Some(p.into()),
                raw => bad_value("--store", raw, "a path prefix"),
            },
            "--resume" => cli.resume = true,
            "--crash-after-tokens" => {
                cli.crash_after_tokens = Some(parse_num(
                    &mut args,
                    "--crash-after-tokens",
                    "a token count",
                    |_: &u64| true,
                ));
            }
            "--compact" => match args.next() {
                Some(p) if !p.is_empty() => cli.compact = Some(p.into()),
                raw => bad_value("--compact", raw, "a store path prefix"),
            },
            "--store-stats" => match args.next() {
                Some(p) if !p.is_empty() => cli.store_stats = Some(p.into()),
                raw => bad_value("--store-stats", raw, "a store path prefix"),
            },
            "--store-format" => {
                cli.store_format = Some(parse_num(
                    &mut args,
                    "--store-format",
                    "2 (legacy uncompressed) or 3 (current)",
                    |n: &u8| {
                        [oqsc_machine::STORE_VERSION_V2, oqsc_machine::STORE_VERSION].contains(n)
                    },
                ));
            }
            "--break-locks" => cli.break_locks = true,
            "--bench-json" => match args.next() {
                Some(p) if !p.is_empty() => cli.bench_json = Some(p.into()),
                raw => bad_value("--bench-json", raw, "an output path"),
            },
            "--bench-reduced" => cli.bench_reduced = true,
            "--serve" => match args.next() {
                Some(a) if !a.is_empty() => cli.serve = Some(a),
                raw => bad_value("--serve", raw, "a Unix socket path or host:port"),
            },
            "--live-budget" => {
                cli.live_budget = Some(parse_num(
                    &mut args,
                    "--live-budget",
                    "a byte count (0 = evict on every feed)",
                    |_: &usize| true,
                ));
            }
            "--eviction" => {
                let raw = args.next();
                match raw.as_deref().and_then(EvictionPolicy::from_name) {
                    Some(policy) => cli.eviction = Some(policy),
                    None => bad_value("--eviction", raw, "lru or gdsf"),
                }
            }
            "--spill-store" => match args.next() {
                Some(p) if !p.is_empty() => cli.spill_store = Some(p.into()),
                raw => bad_value("--spill-store", raw, "a checkpoint-store path"),
            },
            "--read-timeout-ms" => {
                cli.read_timeout_ms = Some(parse_num(
                    &mut args,
                    "--read-timeout-ms",
                    &format!("an integer between 1 and {MAX_READ_TIMEOUT_MS}"),
                    |n: &u64| (1..=MAX_READ_TIMEOUT_MS).contains(n),
                ));
            }
            "--route" => match args.next() {
                Some(a) if !a.is_empty() => cli.route = Some(a),
                raw => bad_value("--route", raw, "a Unix socket path or host:port"),
            },
            "--engines" => match args.next() {
                Some(list) if !list.is_empty() && list.split(',').all(|a| !a.is_empty()) => {
                    cli.engines = Some(list.split(',').map(str::to_string).collect());
                }
                raw => bad_value(
                    "--engines",
                    raw,
                    "a comma-separated list of engine addresses",
                ),
            },
            "--drive" => match args.next() {
                Some(a) if !a.is_empty() => cli.drive = Some(a),
                raw => bad_value("--drive", raw, "a Unix socket path or host:port"),
            },
            "--feeds" => cli.feeds = true,
            "--drive-phase" => match args.next().as_deref() {
                Some("1") => cli.drive_phase = Some(DrivePhase::FirstHalf),
                Some("2") => cli.drive_phase = Some(DrivePhase::SecondHalf),
                raw => bad_value(
                    "--drive-phase",
                    raw.map(str::to_string),
                    "1 (feed first halves, no finish) or 2 (feed the rest, finish)",
                ),
            },
            "--drive-direct" => cli.drive_direct = true,
            "--shutdown" => match args.next() {
                Some(a) if !a.is_empty() => cli.shutdown = Some(a),
                raw => bad_value("--shutdown", raw, "a Unix socket path or host:port"),
            },
            "--fabric-coordinate" => match args.next() {
                Some(a) if !a.is_empty() => cli.fabric_coordinate = Some(a),
                raw => bad_value(
                    "--fabric-coordinate",
                    raw,
                    "a Unix socket path or host:port",
                ),
            },
            "--fabric-work" => match args.next() {
                Some(a) if !a.is_empty() => cli.fabric_work = Some(a),
                raw => bad_value("--fabric-work", raw, "a Unix socket path or host:port"),
            },
            "--lease-size" => {
                cli.lease_size = Some(parse_num(
                    &mut args,
                    "--lease-size",
                    &format!("an integer between 1 and {MAX_LEASE_SIZE}"),
                    |n: &usize| (1..=MAX_LEASE_SIZE).contains(n),
                ));
            }
            "--lease-ttl-ms" => {
                cli.lease_ttl_ms = Some(parse_num(
                    &mut args,
                    "--lease-ttl-ms",
                    "a positive millisecond count",
                    |n: &u64| *n >= 1,
                ));
            }
            "--worker-id" => {
                cli.worker_id = Some(parse_num(
                    &mut args,
                    "--worker-id",
                    "a worker id",
                    |_: &u64| true,
                ));
            }
            "--fabric-throttle-ms" => {
                cli.fabric_throttle_ms = Some(parse_num(
                    &mut args,
                    "--fabric-throttle-ms",
                    "a millisecond count",
                    |_: &u64| true,
                ));
            }
            "--worker" => cli.worker = true,
            "--shard" => {
                cli.shard = Some(parse_num(
                    &mut args,
                    "--shard",
                    "a shard index",
                    |_: &usize| true,
                ));
            }
            "--of" => {
                cli.of = Some(parse_num(
                    &mut args,
                    "--of",
                    &format!("an integer between 1 and {MAX_PROCESSES}"),
                    |n: &usize| (1..=MAX_PROCESSES).contains(n),
                ));
            }
            "--help" | "-h" => usage_and_exit(0),
            other => {
                eprintln!("error: unknown argument: {other}");
                usage_and_exit(2);
            }
        }
    }
    if let Some(w) = cli.workers {
        cli.runner = BatchRunner::new(w);
    }
    if cli.store.is_none() {
        if let Some(n) = cli.checkpoint_every {
            cli.schedule = SessionSchedule::MigrateEvery(n);
        }
    }
    // Bench-record mode stands alone: it times kernels, nothing else.
    if cli.bench_json.is_some() {
        for (set, flag) in [
            (cli.sweep.is_some(), "--sweep"),
            (cli.compact.is_some(), "--compact"),
            (cli.store_stats.is_some(), "--store-stats"),
            (cli.workers.is_some(), "--workers"),
            (cli.checkpoint_every.is_some(), "--checkpoint-every"),
            (cli.store.is_some(), "--store"),
        ] {
            if set {
                eprintln!("error: --bench-json cannot be combined with {flag}");
                std::process::exit(2);
            }
        }
    }
    if cli.bench_reduced && cli.bench_json.is_none() {
        eprintln!("error: --bench-reduced requires --bench-json");
        std::process::exit(2);
    }
    // Flags owned by one serve-family mode.
    for (set, flag) in [
        (cli.live_budget.is_some(), "--live-budget"),
        (cli.eviction.is_some(), "--eviction"),
        (cli.spill_store.is_some(), "--spill-store"),
    ] {
        if set && cli.serve.is_none() {
            eprintln!("error: {flag} requires --serve");
            std::process::exit(2);
        }
    }
    if cli.read_timeout_ms.is_some() && cli.serve.is_none() && cli.route.is_none() {
        eprintln!("error: --read-timeout-ms requires --serve or --route");
        std::process::exit(2);
    }
    if cli.route.is_some() != cli.engines.is_some() {
        eprintln!("error: --route and --engines go together (a router needs its fleet)");
        std::process::exit(2);
    }
    for (set, flag) in [
        (cli.feeds, "--feeds"),
        (cli.drive_phase.is_some(), "--drive-phase"),
    ] {
        if set && cli.drive.is_none() {
            eprintln!("error: {flag} requires --drive");
            std::process::exit(2);
        }
    }
    // The serve-family modes stand alone too: the server, the router,
    // the two drivers and shutdown each do exactly one thing, and only
    // --serve/--route take --workers (their connection-handler pools).
    let serve_modes = [
        (cli.serve.is_some(), "--serve"),
        (cli.route.is_some(), "--route"),
        (cli.drive.is_some(), "--drive"),
        (cli.drive_direct, "--drive-direct"),
        (cli.shutdown.is_some(), "--shutdown"),
    ];
    let active_serve: Vec<&str> = serve_modes
        .iter()
        .filter(|(set, _)| *set)
        .map(|(_, flag)| *flag)
        .collect();
    if active_serve.len() > 1 {
        eprintln!(
            "error: {} cannot be combined with {}",
            active_serve[0], active_serve[1]
        );
        std::process::exit(2);
    }
    if let Some(mode) = active_serve.first() {
        for (set, flag) in [
            (cli.sweep.is_some(), "--sweep"),
            (cli.compact.is_some(), "--compact"),
            (cli.store_stats.is_some(), "--store-stats"),
            (cli.bench_json.is_some(), "--bench-json"),
            (cli.store.is_some(), "--store"),
            (cli.checkpoint_every.is_some(), "--checkpoint-every"),
            (
                cli.workers.is_some() && cli.serve.is_none() && cli.route.is_none(),
                "--workers (only --serve and --route take it)",
            ),
        ] {
            if set {
                eprintln!("error: {mode} cannot be combined with {flag}");
                std::process::exit(2);
            }
        }
    }
    // The two fabric roles are exclusive, live inside --sweep (the spec
    // is the work contract both sides verify), and split the remaining
    // flags: the coordinator owns the store and the lease policy, the
    // worker owns its identity, thread count and throttle.
    if cli.fabric_coordinate.is_some() && cli.fabric_work.is_some() {
        eprintln!("error: --fabric-coordinate cannot be combined with --fabric-work");
        std::process::exit(2);
    }
    let fabric_mode = if cli.fabric_coordinate.is_some() {
        Some("--fabric-coordinate")
    } else if cli.fabric_work.is_some() {
        Some("--fabric-work")
    } else {
        None
    };
    if let Some(mode) = fabric_mode {
        if cli.sweep.is_none() {
            eprintln!("error: {mode} requires --sweep (the sweep is the work contract)");
            std::process::exit(2);
        }
        for (set, flag) in [
            (cli.processes.is_some(), "--processes"),
            (cli.worker, "--worker"),
            (cli.crash_after_tokens.is_some(), "--crash-after-tokens"),
            (cli.checkpoint_every.is_some(), "--checkpoint-every"),
            (cli.store_format.is_some(), "--store-format"),
        ] {
            if set {
                eprintln!("error: {mode} cannot be combined with {flag}");
                std::process::exit(2);
            }
        }
    }
    if cli.fabric_work.is_some() && cli.store.is_some() {
        eprintln!(
            "error: the outcome store belongs to the coordinator; --fabric-work takes no --store"
        );
        std::process::exit(2);
    }
    if cli.fabric_coordinate.is_some() && cli.workers.is_some() {
        eprintln!("error: the coordinator runs no instances; --workers belongs to --fabric-work");
        std::process::exit(2);
    }
    for (set, flag) in [
        (cli.lease_size.is_some(), "--lease-size"),
        (cli.lease_ttl_ms.is_some(), "--lease-ttl-ms"),
    ] {
        if set && cli.fabric_coordinate.is_none() {
            eprintln!("error: {flag} requires --fabric-coordinate");
            std::process::exit(2);
        }
    }
    for (set, flag) in [
        (cli.worker_id.is_some(), "--worker-id"),
        (cli.fabric_throttle_ms.is_some(), "--fabric-throttle-ms"),
    ] {
        if set && cli.fabric_work.is_none() {
            eprintln!("error: {flag} requires --fabric-work");
            std::process::exit(2);
        }
    }
    // Compact and store-stats modes stand alone: they read existing
    // stores, never run sweeps.
    for (mode_set, mode) in [
        (cli.compact.is_some(), "--compact"),
        (cli.store_stats.is_some(), "--store-stats"),
    ] {
        if !mode_set {
            continue;
        }
        for (set, flag) in [
            (cli.sweep.is_some(), "--sweep"),
            (cli.workers.is_some(), "--workers"),
            (cli.checkpoint_every.is_some(), "--checkpoint-every"),
            (cli.store.is_some(), "--store"),
            (cli.resume, "--resume"),
        ] {
            if set {
                eprintln!("error: {mode} cannot be combined with {flag}");
                std::process::exit(2);
            }
        }
    }
    if cli.compact.is_some() && cli.store_stats.is_some() {
        eprintln!("error: --compact cannot be combined with --store-stats");
        std::process::exit(2);
    }
    if cli.break_locks && cli.compact.is_none() && cli.store_stats.is_none() {
        eprintln!("error: --break-locks requires --compact or --store-stats");
        std::process::exit(2);
    }
    if cli.store_format.is_some() && cli.store.is_none() {
        eprintln!("error: --store-format requires --store");
        std::process::exit(2);
    }
    // Flags that only make sense inside a sweep.
    if cli.sweep.is_none() {
        for (set, flag) in [
            (cli.k_max.is_some(), "--k-max"),
            (cli.trials.is_some(), "--trials"),
            (cli.processes.is_some(), "--processes"),
            (cli.store.is_some(), "--store"),
            (cli.resume, "--resume"),
            (cli.crash_after_tokens.is_some(), "--crash-after-tokens"),
            (cli.worker, "--worker"),
        ] {
            if set && cli.compact.is_none() {
                eprintln!("error: {flag} requires --sweep");
                std::process::exit(2);
            } else if set {
                eprintln!("error: --compact cannot be combined with {flag}");
                std::process::exit(2);
            }
        }
    }
    if cli.trials.is_some()
        && !matches!(cli.sweep.as_deref(), Some("f3") | Some("f4"))
        && cli.sweep.is_some()
    {
        eprintln!(
            "error: --trials only applies to --sweep f3|f4 (e6/f1 fleets are sized by --k-max)"
        );
        std::process::exit(2);
    }
    if cli.resume && cli.store.is_none() {
        eprintln!("error: --resume requires --store");
        std::process::exit(2);
    }
    if cli.crash_after_tokens.is_some() && cli.store.is_none() {
        eprintln!("error: --crash-after-tokens requires --store");
        std::process::exit(2);
    }
    if cli.worker && (cli.shard.is_none() || cli.of.is_none()) {
        eprintln!("error: --worker requires --shard and --of");
        std::process::exit(2);
    }
    if let (Some(shard), Some(of)) = (cli.shard, cli.of) {
        if shard >= of {
            eprintln!("error: --shard {shard} out of range: must be < --of {of}");
            std::process::exit(2);
        }
    }
    if !cli.worker && (cli.shard.is_some() || cli.of.is_some()) {
        eprintln!("error: --shard/--of require --worker");
        std::process::exit(2);
    }
    cli
}

fn pool_opts(cli: &Cli) -> PoolRunOpts {
    PoolRunOpts {
        store_prefix: cli.store.clone(),
        resume: cli.resume,
        checkpoint_every: cli.checkpoint_every.unwrap_or(DEFAULT_PERSIST_EVERY),
        crash_after_tokens: cli.crash_after_tokens,
        legacy_v2: cli.store_format == Some(oqsc_machine::STORE_VERSION_V2),
        workers: cli.workers.unwrap_or(1),
    }
}

fn exit_for(err: &PoolError) -> i32 {
    match err {
        PoolError::WorkerCrashed { .. } => WORKER_CRASH_EXIT,
        _ => 1,
    }
}

fn run_sweep(cli: &Cli) -> i32 {
    let name = cli.sweep.as_deref().expect("sweep mode");
    let default_k = match name {
        "e6" => 7,
        "f1" => 8,
        "f3" => oqsc_bench::F3_DEFAULT_K_MAX,
        _ => oqsc_bench::F4_DEFAULT_K,
    };
    let default_trials = if name == "f3" {
        oqsc_bench::F3_DEFAULT_TRIALS
    } else {
        oqsc_bench::F4_DEFAULT_TRIALS
    };
    let spec = SweepSpec::from_cli(
        name,
        cli.k_max.unwrap_or(default_k),
        cli.trials.unwrap_or(default_trials),
    )
    .expect("validated name");
    if let Some(addr) = &cli.fabric_coordinate {
        // Fabric coordinator: serve leases until the sweep completes,
        // then print the merged table (stdout carries only the table, so
        // it cmp's against the in-process sweep).
        let config = FabricConfig {
            lease_size: cli.lease_size.unwrap_or(DEFAULT_LEASE_SIZE),
            lease_ttl: std::time::Duration::from_millis(
                cli.lease_ttl_ms.unwrap_or(DEFAULT_LEASE_TTL_MS),
            ),
            store_path: cli.store.clone(),
            resume: cli.resume,
            ..FabricConfig::default()
        };
        let lease_size = config.lease_size;
        let ttl = config.lease_ttl;
        let coordinator = match Coordinator::bind(addr, spec, config) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: starting fabric coordinator on {addr}: {e}");
                return 1;
            }
        };
        eprintln!(
            "fabric coordinator on {} (sweep {}, {} instances per lease, ttl {} ms)",
            coordinator.local_addr(),
            spec.name(),
            lease_size,
            ttl.as_millis(),
        );
        return match coordinator.run() {
            Ok(rows) => {
                rows.print();
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        };
    }
    if let Some(addr) = &cli.fabric_work {
        // Fabric worker: lease ranges from the coordinator until it
        // answers FINISHED.
        let config = WorkerConfig {
            worker_id: cli.worker_id.unwrap_or(std::process::id() as u64),
            threads: cli.workers.unwrap_or(1),
            throttle: cli.fabric_throttle_ms.map(std::time::Duration::from_millis),
            ..WorkerConfig::default()
        };
        return match fabric_work(addr, spec, &config) {
            Ok(report) => {
                eprintln!(
                    "fabric worker {} done: {} leases, {} instances, {} expired",
                    config.worker_id, report.leases, report.instances, report.expired
                );
                0
            }
            Err(e) => {
                eprintln!("error: fabric worker against {addr}: {e}");
                1
            }
        };
    }
    if cli.worker {
        // Worker mode: run our shard, speak the OUTCOME protocol.
        let shard = ShardId {
            shard: cli.shard.expect("validated"),
            of: cli.of.expect("validated"),
        };
        return match worker_outcomes(spec, shard, &pool_opts(cli)) {
            Ok(Some(outcomes)) => {
                let stdout = std::io::stdout();
                emit_outcomes(&mut stdout.lock(), &outcomes).expect("stdout");
                0
            }
            Ok(None) => WORKER_CRASH_EXIT,
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        };
    }
    let rows = if let Some(processes) = cli.processes {
        // Parent mode: shard over worker processes running this binary.
        let exe = match std::env::current_exe() {
            Ok(exe) => exe,
            Err(e) => {
                eprintln!("error: cannot locate own executable: {e}");
                return 1;
            }
        };
        match ProcessPool::new(processes).run(&exe, spec, &pool_opts(cli)) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("error: {e}");
                return exit_for(&e);
            }
        }
    } else if cli.store.is_some() {
        // Single-process persistent run: the worker path, in-process.
        // Unlike spawned worker processes (which default to one serial
        // thread each), this is the whole sweep — honor the documented
        // --workers default of all available cores.
        let mut opts = pool_opts(cli);
        opts.workers = cli.workers.unwrap_or_else(|| cli.runner.workers());
        match worker_outcomes(spec, ShardId { shard: 0, of: 1 }, &opts) {
            Ok(Some(outcomes)) => {
                let triples = outcomes
                    .into_iter()
                    .map(|(fleet, idx, o)| (fleet.to_string(), idx, o));
                match oqsc_bench::pool::rows_from_outcomes(spec, triples) {
                    Ok(rows) => rows,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 1;
                    }
                }
            }
            Ok(None) => {
                eprintln!(
                    "crashed after --crash-after-tokens budget; resume with --resume to finish"
                );
                return WORKER_CRASH_EXIT;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    } else {
        // Plain in-process sweep, straight through the registry.
        spec.rows_in_process(&cli.runner, cli.schedule)
    };
    rows.print();
    0
}

/// Runs the SIMD kernel micro-benchmark suite (scalar vs auto dispatch)
/// and writes the machine-readable record to `path`.
fn run_bench_record(path: &std::path::Path, reduced: bool) -> i32 {
    let json = oqsc_bench::run_record(oqsc_bench::RecordOpts { reduced });
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("error: writing {}: {e}", path.display());
        return 1;
    }
    println!("wrote bench record to {}", path.display());
    print!("{json}");
    0
}

/// One compact `StoreStats` summary: the shared column set of the
/// `--store-stats` report and the `--compact` before/after lines.
fn stats_columns(s: &oqsc_machine::StoreStats) -> String {
    format!(
        "v{} | {} records ({} full + {} ref, dedupe {:.1}%) | {}/{} finished | \
         {} payload bytes on disk / {} logical ({:.2}x, {} compressed) | file {} bytes",
        s.version,
        s.records,
        s.full_records,
        s.ref_records,
        100.0 * s.dedupe_hit_rate(),
        s.finished_instances,
        s.instances,
        s.stored_payload_bytes,
        s.uncompressed_payload_bytes,
        s.compression_ratio(),
        s.compressed_payloads,
        s.file_bytes,
    )
}

/// Finds every store file under `prefix`, optionally clearing orphaned
/// locks first, and hands each to `visit` — the shared walk of
/// `--compact` and `--store-stats`.
fn walk_stores(
    prefix: &std::path::Path,
    break_locks: bool,
    mut visit: impl FnMut(&std::path::Path) -> Result<(), i32>,
) -> i32 {
    let files = match find_store_files(prefix) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", prefix.display());
            return 1;
        }
    };
    if files.is_empty() {
        eprintln!(
            "error: no checkpoint stores (*.cps) match prefix {}",
            prefix.display()
        );
        return 1;
    }
    for path in files {
        if break_locks {
            match CheckpointStore::break_lock(&path) {
                Ok(true) => println!("broke orphaned lock: {}.lock", path.display()),
                Ok(false) => {}
                Err(e) => {
                    eprintln!("error: breaking lock of {}: {e}", path.display());
                    return 1;
                }
            }
        }
        if let Err(code) = visit(&path) {
            return code;
        }
    }
    0
}

/// Compacts every checkpoint store under `prefix` (see the module docs).
fn run_compact(prefix: &std::path::Path, break_locks: bool) -> i32 {
    walk_stores(
        prefix,
        break_locks,
        |path| match CheckpointStore::compact_file(path) {
            Ok(r) => {
                println!(
                    "compacted {}: {} records / {} bytes -> {} records / {} bytes",
                    path.display(),
                    r.records_before,
                    r.bytes_before,
                    r.records_after,
                    r.bytes_after
                );
                println!("  before: {}", stats_columns(&r.before));
                println!("  after:  {}", stats_columns(&r.after));
                Ok(())
            }
            Err(e @ StoreError::Locked { .. }) => {
                eprintln!("error: {e}\n       (if the writer is dead, re-run with --break-locks)");
                Err(1)
            }
            Err(e) => {
                eprintln!("error: compacting {}: {e}", path.display());
                Err(1)
            }
        },
    )
}

/// Prints the per-file statistics report for every store under `prefix`
/// without modifying anything (the read path still verifies every
/// record, so a corrupt store is a loud error here too).
fn run_store_stats(prefix: &std::path::Path, break_locks: bool) -> i32 {
    walk_stores(prefix, break_locks, |path| {
        let tag = match oqsc_machine::peek_header(path) {
            Ok(header) => header.tag,
            Err(e) => {
                eprintln!("error: reading {}: {e}", path.display());
                return Err(1);
            }
        };
        match CheckpointStore::open(path, &tag) {
            Ok(store) => {
                println!("{}: {}", path.display(), stats_columns(&store.stats()));
                Ok(())
            }
            Err(e @ StoreError::Locked { .. }) => {
                eprintln!("error: {e}\n       (if the writer is dead, re-run with --break-locks)");
                Err(1)
            }
            Err(e) => {
                eprintln!("error: opening {}: {e}", path.display());
                Err(1)
            }
        }
    })
}

/// Runs the session-multiplexing server on `addr` (Unix socket path or
/// `host:port`) until a client sends `SHUTDOWN`, then prints the
/// engine's final statistics line.
fn run_serve(addr: &str, cli: &Cli) -> i32 {
    let mut config = ServerConfig::default();
    if let Some(w) = cli.workers {
        config.threads = w;
    }
    if let Some(bytes) = cli.live_budget {
        config.mux.live_bytes_budget = bytes;
    }
    if let Some(policy) = cli.eviction {
        config.mux.eviction = policy;
    }
    if let Some(ms) = cli.read_timeout_ms {
        config.read_timeout = std::time::Duration::from_millis(ms);
    }
    config.spill_store = cli.spill_store.clone();
    let threads = config.threads;
    let eviction = config.mux.eviction;
    let server = match Server::bind(addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: binding {addr}: {e}");
            return 1;
        }
    };
    eprintln!(
        "serving on {addr} ({threads} connection handler{}, {} eviction); stop with --shutdown",
        if threads == 1 { "" } else { "s" },
        eviction.name(),
    );
    match server.run() {
        Ok(stats) => {
            println!("{}", stats_line(&stats));
            0
        }
        Err(e) => {
            eprintln!("error: serving {addr}: {e}");
            1
        }
    }
}

/// Runs the consistent-hash router on `addr`, fronting the `engines`
/// fleet, until a client sends `SHUTDOWN` (which it broadcasts).
fn run_route(addr: &str, engines: Vec<String>, cli: &Cli) -> i32 {
    let mut config = RouterConfig::default();
    if let Some(w) = cli.workers {
        config.threads = w;
    }
    if let Some(ms) = cli.read_timeout_ms {
        config.read_timeout = std::time::Duration::from_millis(ms);
    }
    let fleet = engines.join(", ");
    let router = match Router::bind(addr, engines, config) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("error: binding router on {addr}: {e}");
            return 1;
        }
    };
    eprintln!("routing on {addr} -> [{fleet}]; stop with --shutdown");
    match router.run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: routing on {addr}: {e}");
            1
        }
    }
}

/// Drives the demo fleet through a running `--serve` server (or a
/// `--route` front) and prints its `OUTCOME` lines — nothing else goes
/// to stdout, so the output `cmp`s cleanly against `--drive-direct`.
fn run_drive(addr: &str, feeds: bool, phase: Option<DrivePhase>) -> i32 {
    let mode = if feeds {
        FeedMode::Batched
    } else {
        FeedMode::Chunks
    };
    match drive_fleet(addr, DRIVE_SEED, mode, phase.unwrap_or(DrivePhase::Full)) {
        Ok(lines) => {
            for line in lines {
                println!("{line}");
            }
            0
        }
        Err(e) => {
            eprintln!("error: driving {addr}: {e}");
            1
        }
    }
}

/// Prints the demo fleet's `OUTCOME` lines from uninterrupted
/// in-process runs — the reference output for `--drive`.
fn run_drive_direct() -> i32 {
    for line in direct_outcome_lines(DRIVE_SEED) {
        println!("{line}");
    }
    0
}

/// Asks a running `--serve` server or `--route` router to shut down.
fn run_shutdown(addr: &str) -> i32 {
    match shutdown_socket(addr) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: shutting down {addr}: {e}");
            1
        }
    }
}

fn main() {
    let cli = parse_cli();
    if let Some(addr) = &cli.serve {
        std::process::exit(run_serve(addr, &cli));
    }
    if let Some(addr) = &cli.route {
        let engines = cli.engines.clone().expect("validated with --route");
        std::process::exit(run_route(addr, engines, &cli));
    }
    if let Some(addr) = &cli.drive {
        std::process::exit(run_drive(addr, cli.feeds, cli.drive_phase));
    }
    if cli.drive_direct {
        std::process::exit(run_drive_direct());
    }
    if let Some(addr) = &cli.shutdown {
        std::process::exit(run_shutdown(addr));
    }
    if let Some(path) = &cli.bench_json {
        std::process::exit(run_bench_record(path, cli.bench_reduced));
    }
    if let Some(prefix) = &cli.compact {
        std::process::exit(run_compact(prefix, cli.break_locks));
    }
    if let Some(prefix) = &cli.store_stats {
        std::process::exit(run_store_stats(prefix, cli.break_locks));
    }
    if cli.sweep.is_some() {
        std::process::exit(run_sweep(&cli));
    }
    let schedule_desc = match cli.schedule {
        SessionSchedule::Uninterrupted => "uninterrupted sessions".to_string(),
        SessionSchedule::MigrateEvery(n) => {
            format!("suspend/migrate/resume every {n} tokens")
        }
    };
    println!(
        "== Reproduction experiments: Le Gall, SPAA 2006 ({} batch worker{}, {schedule_desc}) ==\n",
        cli.runner.workers(),
        if cli.runner.workers() == 1 { "" } else { "s" }
    );
    oqsc_bench::print_e1();
    oqsc_bench::print_e2();
    oqsc_bench::print_e3();
    oqsc_bench::print_e4();
    oqsc_bench::print_e5();
    oqsc_bench::print_e6(&cli.runner, cli.schedule);
    oqsc_bench::print_f1(&cli.runner, cli.schedule);
    oqsc_bench::print_f2();
    oqsc_bench::print_f3(&cli.runner, cli.schedule);
    oqsc_bench::print_f4(&cli.runner, cli.schedule);
    oqsc_bench::print_ablations();
}
