//! Regenerates every experiment table of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p oqsc-bench --bin experiments
//! ```

fn main() {
    println!("== Reproduction experiments: Le Gall, SPAA 2006 ==\n");
    oqsc_bench::print_e1();
    oqsc_bench::print_e2();
    oqsc_bench::print_e3();
    oqsc_bench::print_e4();
    oqsc_bench::print_e5();
    oqsc_bench::print_e6();
    oqsc_bench::print_f1();
    oqsc_bench::print_f2();
    oqsc_bench::print_f3();
    oqsc_bench::print_f4();
    oqsc_bench::print_ablations();
}
