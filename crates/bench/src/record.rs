//! Machine-readable micro-benchmark records for the SIMD kernel layer.
//!
//! `experiments --bench-json PATH` runs a small fixed suite of dense-kernel
//! micro-benchmarks twice — once with the SIMD dispatch forced to scalar,
//! once with auto-detection — and writes one JSON document describing both
//! runs plus the derived scalar/SIMD speedups. The committed
//! `BENCH_throughput.json` at the repo root is one such record; CI re-runs
//! the suite at reduced size and diffs the schema (keys, not timings)
//! against it, so the file can never silently drift from the producer.
//!
//! The format is hand-rolled (no serde in the dependency budget) and
//! deliberately timestamp-free: the same binary on the same host produces
//! structurally identical output, and timings are the only thing that
//! varies between runs.
//!
//! Schema (`oqsc-bench-record/v1`):
//!
//! ```json
//! {
//!   "schema": "oqsc-bench-record/v1",
//!   "host": { "arch": "...", "simd": "avx2", "threads": 1 },
//!   "results": [
//!     { "bench": "gate_sweep_dense", "qubits": 16, "mode": "scalar",
//!       "median_ns": 1, "min_ns": 1, "max_ns": 1,
//!       "samples": 7, "iters": 3 }
//!   ],
//!   "derived": [
//!     { "bench": "gate_sweep_dense", "qubits": 16, "speedup": 1.50 }
//!   ]
//! }
//! ```
//!
//! `speedup` is `scalar_median_ns / simd_median_ns` for the same
//! `(bench, qubits)` pair; on a host with no usable SIMD both modes run the
//! identical scalar code and the ratio hovers around 1.0.

use oqsc_quantum::{simd, Complex, QuantumBackend, SimdLevel, StateVector};
use std::time::Instant;

/// Options for one record run.
#[derive(Debug, Clone, Copy)]
pub struct RecordOpts {
    /// Shrink problem sizes and sample counts so the suite finishes in a
    /// few seconds — the CI smoke setting. Timings from a reduced run are
    /// not comparable to a full run; only the schema is.
    pub reduced: bool,
}

/// Per-iteration timing statistics for one `(bench, qubits, mode)` cell.
struct Timing {
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
    samples: usize,
    iters: u32,
}

/// One row of the `results` array.
struct ResultRow {
    bench: &'static str,
    qubits: usize,
    mode: &'static str,
    timing: Timing,
}

/// Target wall-clock per timing sample, full vs reduced.
const SAMPLE_TARGET_NS: u64 = 10_000_000;
const SAMPLE_TARGET_NS_REDUCED: u64 = 1_000_000;

/// Samples per cell, full vs reduced (median over these is reported).
const SAMPLES: usize = 7;
const SAMPLES_REDUCED: usize = 3;

/// The acceptance micro-benchmark: a full Hadamard sweep (`H` on every
/// qubit) over a dense `StateVector` — the hottest dense inner loop in the
/// A1/A2/A3 pipelines.
fn gate_sweep_dense(n: usize, iters: u32) -> u64 {
    let qs: Vec<usize> = (0..n).collect();
    let mut s = StateVector::uniform(n);
    let t = Instant::now();
    for _ in 0..iters {
        s.apply_hadamard_all(&qs);
    }
    let ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
    std::hint::black_box(s.amp(0));
    ns
}

/// The amplification axpy family: `reflect_about` plus one `add_scaled`
/// per iteration (the diffusion step of every Grover-style experiment).
fn reflect_axpy(n: usize, iters: u32) -> u64 {
    let mirror = StateVector::uniform(n);
    let mut s = StateVector::uniform(n);
    let coeff = Complex::new(0.0, 0.0);
    let t = Instant::now();
    for _ in 0..iters {
        s.reflect_about(&mirror);
        s.add_scaled(&mirror, coeff);
    }
    let ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
    std::hint::black_box(s.amp(0));
    ns
}

/// The chunked reduction family: norm, one marginal, and one masked
/// probability per iteration — everything measurement-side code touches.
fn reductions_dense(n: usize, iters: u32) -> u64 {
    let s = StateVector::uniform(n);
    let mut sink = 0.0f64;
    let t = Instant::now();
    for _ in 0..iters {
        sink += s.norm();
        sink += s.prob_one(n - 1);
        sink += s.probability_where(|b| b & 1 == 0);
    }
    let ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
    std::hint::black_box(sink);
    ns
}

/// Calibrate an iteration count so one sample takes roughly `target_ns`,
/// then collect `samples` per-iteration timings.
fn measure(run: fn(usize, u32) -> u64, n: usize, target_ns: u64, samples: usize) -> Timing {
    let probe = run(n, 1).max(1);
    let iters = u32::try_from((target_ns / probe).clamp(1, 100_000)).expect("clamped");
    let mut per_iter: Vec<u64> = (0..samples)
        .map(|_| run(n, iters) / u64::from(iters))
        .collect();
    per_iter.sort_unstable();
    Timing {
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        max_ns: per_iter[per_iter.len() - 1],
        samples,
        iters,
    }
}

/// The benchmark suite: `(name, runner, full sizes, reduced sizes)`.
type Suite = [(
    &'static str,
    fn(usize, u32) -> u64,
    &'static [usize],
    &'static [usize],
); 3];

const SUITE: Suite = [
    ("gate_sweep_dense", gate_sweep_dense, &[14, 16, 18], &[10]),
    ("reflect_axpy", reflect_axpy, &[16], &[10]),
    ("reductions_dense", reductions_dense, &[16], &[10]),
];

/// Restores automatic SIMD dispatch even if a benchmark panics.
struct ForceGuard;

impl Drop for ForceGuard {
    fn drop(&mut self) {
        simd::force(None);
    }
}

/// Run the full suite under both dispatch modes and return the JSON record.
///
/// The scalar pass runs first (under `simd::force(Some(Scalar))`), then the
/// auto pass; dispatch is restored to auto-detection before returning.
pub fn run_record(opts: RecordOpts) -> String {
    let _guard = ForceGuard;
    let (target_ns, samples) = if opts.reduced {
        (SAMPLE_TARGET_NS_REDUCED, SAMPLES_REDUCED)
    } else {
        (SAMPLE_TARGET_NS, SAMPLES)
    };
    let mut results: Vec<ResultRow> = Vec::new();
    for (mode, level) in [("scalar", Some(SimdLevel::Scalar)), ("simd", None)] {
        simd::force(level);
        for (bench, run, full, reduced) in SUITE {
            let sizes = if opts.reduced { reduced } else { full };
            for &n in sizes {
                results.push(ResultRow {
                    bench,
                    qubits: n,
                    mode,
                    timing: measure(run, n, target_ns, samples),
                });
            }
        }
    }
    render_json(&results)
}

/// Scalar-median / simd-median for every `(bench, qubits)` pair that has
/// both modes measured.
fn derived_speedups(results: &[ResultRow]) -> Vec<(&'static str, usize, f64)> {
    let mut out = Vec::new();
    for r in results.iter().filter(|r| r.mode == "scalar") {
        if let Some(s) = results
            .iter()
            .find(|s| s.mode == "simd" && s.bench == r.bench && s.qubits == r.qubits)
        {
            let ratio = r.timing.median_ns as f64 / s.timing.median_ns.max(1) as f64;
            out.push((r.bench, r.qubits, ratio));
        }
    }
    out
}

/// Serialize the record. Keys are emitted in a fixed order so two runs of
/// the same binary differ only in the measured numbers.
fn render_json(results: &[ResultRow]) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"oqsc-bench-record/v1\",\n");
    json.push_str(&format!(
        "  \"host\": {{ \"arch\": \"{}\", \"simd\": \"{}\", \"threads\": {} }},\n",
        std::env::consts::ARCH,
        simd::detected().name(),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"bench\": \"{}\", \"qubits\": {}, \"mode\": \"{}\", \
             \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
             \"samples\": {}, \"iters\": {} }}{}\n",
            r.bench,
            r.qubits,
            r.mode,
            r.timing.median_ns,
            r.timing.min_ns,
            r.timing.max_ns,
            r.timing.samples,
            r.timing.iters,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"derived\": [\n");
    let derived = derived_speedups(results);
    for (i, (bench, qubits, speedup)) in derived.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"bench\": \"{bench}\", \"qubits\": {qubits}, \"speedup\": {speedup:.3} }}{}\n",
            if i + 1 == derived.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Structural smoke test on the reduced suite: every expected key is
    /// present and both modes appear for every bench.
    #[test]
    fn reduced_record_has_stable_schema() {
        let json = run_record(RecordOpts { reduced: true });
        for key in [
            "\"schema\": \"oqsc-bench-record/v1\"",
            "\"host\"",
            "\"arch\"",
            "\"simd\"",
            "\"threads\"",
            "\"results\"",
            "\"derived\"",
            "\"median_ns\"",
            "\"min_ns\"",
            "\"max_ns\"",
            "\"samples\"",
            "\"iters\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        for (bench, _, _, _) in SUITE {
            for mode in ["scalar", "simd"] {
                let cell = format!("\"bench\": \"{bench}\", \"qubits\": 10, \"mode\": \"{mode}\"");
                assert!(json.contains(&cell), "missing {cell} in:\n{json}");
            }
        }
        // Dispatch must be restored after the run.
        assert_eq!(simd::active(), simd::detected());
    }
}
