//! Machine-readable benchmark records for the perf-sensitive layers.
//!
//! `experiments --bench-json PATH` runs a fixed suite of benchmarks and
//! writes one JSON document. Three families:
//!
//! * **kernel / end-to-end cells** — dense-kernel micro-benchmarks plus two
//!   end-to-end workloads (a batched complement sweep and an A3 densifying
//!   stream), each measured twice: once with the SIMD dispatch forced to
//!   scalar, once with auto-detection, with the derived scalar/SIMD
//!   speedups;
//! * **store cells** — `store_open`, `store_recover` and
//!   `checkpoint_roundtrip` timed against a log of dense A3 checkpoints,
//!   once with payload compression off and once on
//!   (`mode: "uncompressed" | "compressed"`; SIMD-independent);
//! * **`stores` rows** — on-disk size of real dense-backend E6/F1 sweep
//!   stores, compressed vs uncompressed, with the shrink factor (the
//!   store-v3 acceptance number: dense amplitude snapshots shrink well
//!   over 2×);
//! * **`mux` rows** — the session multiplexing engine's throughput
//!   cells: a fleet far larger than the live budget driven through
//!   `oqsc_serve::run_fleet`, with tokens/sec and the sessions-resident
//!   high-water mark (the serving acceptance number: ≥100k concurrent
//!   sessions under a live set below 1% of the fleet);
//! * **`mux_batched` rows** — the same churn fleet driven over a real
//!   served socket, once with per-token `FEED` round trips and once with
//!   one pipelined `FEEDS` batch per session; the batched row carries
//!   `speedup_vs_feed` (the scale-out acceptance number: ≥3×);
//! * **`router` rows** — the batched socket workload driven through a
//!   consistent-hash `Router` front over 1 and 2 backend engines;
//! * **`eviction` rows** — a heterogeneous fleet (every fourth session a
//!   dense Grover streamer, the rest cheap format checkers) churned once
//!   per eviction policy (`lru` vs `gdsf`), so the committed record
//!   carries the measured verdict behind the engine's default policy.
//!
//! The committed `BENCH_throughput.json` at the repo root is one such
//! record; CI re-runs the suite at reduced size and diffs the schema
//! (keys, not timings) against it, so the file can never silently drift
//! from the producer. The workload functions are `pub` and reused by
//! `cargo bench --bench throughput` / `--bench adaptive`, so the criterion
//! benches and the JSON record time the same code.
//!
//! The format is hand-rolled (no serde in the dependency budget) and
//! deliberately timestamp-free: the same binary on the same host produces
//! structurally identical output, and measurements are the only thing that
//! varies between runs.
//!
//! Schema (`oqsc-bench-record/v1`):
//!
//! ```json
//! {
//!   "schema": "oqsc-bench-record/v1",
//!   "host": { "arch": "...", "simd": "avx2", "threads": 1 },
//!   "results": [
//!     { "bench": "gate_sweep_dense", "qubits": 16, "mode": "scalar",
//!       "median_ns": 1, "min_ns": 1, "max_ns": 1,
//!       "samples": 7, "iters": 3 }
//!   ],
//!   "derived": [
//!     { "bench": "gate_sweep_dense", "qubits": 16, "speedup": 1.50 }
//!   ],
//!   "stores": [
//!     { "sweep": "f1-dense", "records": 58, "uncompressed_bytes": 825340,
//!       "compressed_bytes": 61144, "shrink": 13.50 }
//!   ],
//!   "mux": [
//!     { "bench": "mux_feed", "sessions": 100000, "live_budget_bytes": 31744,
//!       "workers": 8, "tokens": 3200000, "tokens_per_sec": 1, "peak_live": 513,
//!       "evictions": 1, "hydrations": 1 }
//!   ],
//!   "mux_batched": [
//!     { "bench": "mux_batched", "mode": "feeds", "sessions": 256,
//!       "tokens": 8192, "tokens_per_sec": 1, "speedup_vs_feed": 3.000 }
//!   ],
//!   "router": [
//!     { "bench": "router", "engines": 2, "sessions": 256,
//!       "tokens": 8192, "tokens_per_sec": 1 }
//!   ],
//!   "eviction": [
//!     { "bench": "eviction", "policy": "gdsf", "sessions": 20000,
//!       "live_budget_bytes": 1, "workers": 8, "tokens": 640000,
//!       "tokens_per_sec": 1, "evictions": 1, "hydrations": 1 }
//!   ]
//! }
//! ```
//!
//! `speedup` is `scalar_median_ns / simd_median_ns` for the same
//! `(bench, qubits)` pair; on a host with no usable SIMD both modes run the
//! identical scalar code and the ratio hovers around 1.0. `shrink` is
//! `uncompressed_bytes / compressed_bytes` for the same sweep, checkpoint
//! cadence and record count.

use crate::experiments::f1_seeds;
use oqsc_core::separation::separation_quantum_task;
use oqsc_core::sweep::complement_sweep_in;
use oqsc_core::{ComplementRecognizer, GroverStreamer};
use oqsc_lang::{random_member, random_nonmember, Sym};
use oqsc_machine::{
    BatchRunner, CheckpointStore, Checkpointable, Session, SessionCheckpoint, StreamingDecider,
};
use oqsc_quantum::{simd, AdaptiveState, Complex, QuantumBackend, SimdLevel, StateVector};
use oqsc_serve::{
    feeds_line, run_fleet, DeciderKind, EvictionPolicy, LineClient, MuxConfig, MuxEngine, MuxStats,
    Router, RouterConfig, Server, ServerConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::Instant;

/// Options for one record run.
#[derive(Debug, Clone, Copy)]
pub struct RecordOpts {
    /// Shrink problem sizes and sample counts so the suite finishes in a
    /// few seconds — the CI smoke setting. Timings from a reduced run are
    /// not comparable to a full run; only the schema is.
    pub reduced: bool,
}

/// Per-iteration timing statistics for one `(bench, qubits, mode)` cell.
struct Timing {
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
    samples: usize,
    iters: u32,
}

/// One row of the `results` array.
struct ResultRow {
    bench: &'static str,
    qubits: usize,
    mode: &'static str,
    timing: Timing,
}

/// One row of the `stores` array: the on-disk footprint of one
/// dense-backend sweep's checkpoint store, compression off vs on (same
/// instances, cadence and record count in both runs).
struct StoreRow {
    sweep: &'static str,
    records: usize,
    uncompressed_bytes: u64,
    compressed_bytes: u64,
}

impl StoreRow {
    /// `uncompressed / compressed` — the store-v3 acceptance number.
    fn shrink(&self) -> f64 {
        self.uncompressed_bytes as f64 / self.compressed_bytes.max(1) as f64
    }
}

/// One row of the `mux` array: a session-multiplexing throughput cell.
#[derive(Debug)]
struct MuxRow {
    sessions: usize,
    live_budget_bytes: usize,
    workers: usize,
    tokens: u64,
    tokens_per_sec: u64,
    peak_live: u64,
    evictions: u64,
    hydrations: u64,
}

/// One row of the `mux_batched` array: the socket feed phase, per-token
/// (`mode: "feed"`) vs batched (`mode: "feeds"`), with the batched row's
/// speedup over the per-token baseline.
#[derive(Debug)]
struct BatchedRow {
    mode: &'static str,
    sessions: usize,
    tokens: u64,
    tokens_per_sec: u64,
    speedup_vs_feed: f64,
}

/// One row of the `router` array: the batched socket workload driven
/// through a consistent-hash router over `engines` backends.
#[derive(Debug)]
struct RouterRow {
    engines: usize,
    sessions: usize,
    tokens: u64,
    tokens_per_sec: u64,
}

/// One row of the `eviction` array: the heterogeneous churn cell under
/// one eviction policy.
#[derive(Debug)]
struct EvictionRow {
    policy: &'static str,
    sessions: usize,
    live_budget_bytes: usize,
    workers: usize,
    tokens: u64,
    tokens_per_sec: u64,
    evictions: u64,
    hydrations: u64,
}

/// Target wall-clock per timing sample, full vs reduced.
const SAMPLE_TARGET_NS: u64 = 10_000_000;
const SAMPLE_TARGET_NS_REDUCED: u64 = 1_000_000;

/// Samples per cell, full vs reduced (median over these is reported).
const SAMPLES: usize = 7;
const SAMPLES_REDUCED: usize = 3;

/// Checkpoints in the store-cell log (`store_open`/`store_recover`/
/// `checkpoint_roundtrip` all work over the same set).
const STORE_BENCH_CHECKPOINTS: usize = 24;

/// `t.elapsed()` as saturating nanoseconds.
fn elapsed_ns(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// `k` from a row's qubit label — `qubits = 2k + 2`, the A3 register size
/// at language parameter `k`, used as the size axis for every cell.
fn k_for(qubits: usize) -> u32 {
    u32::try_from(qubits.saturating_sub(2) / 2).expect("small k")
}

/// The acceptance micro-benchmark: a full Hadamard sweep (`H` on every
/// qubit) over a dense `StateVector` — the hottest dense inner loop in the
/// A1/A2/A3 pipelines. Returns elapsed nanoseconds for `iters` sweeps.
pub fn gate_sweep_dense(n: usize, iters: u32) -> u64 {
    let qs: Vec<usize> = (0..n).collect();
    let mut s = StateVector::uniform(n);
    let t = Instant::now();
    for _ in 0..iters {
        s.apply_hadamard_all(&qs);
    }
    let ns = elapsed_ns(t);
    std::hint::black_box(s.amp(0));
    ns
}

/// The amplification axpy family: `reflect_about` plus one `add_scaled`
/// per iteration (the diffusion step of every Grover-style experiment).
pub fn reflect_axpy(n: usize, iters: u32) -> u64 {
    let mirror = StateVector::uniform(n);
    let mut s = StateVector::uniform(n);
    let coeff = Complex::new(0.0, 0.0);
    let t = Instant::now();
    for _ in 0..iters {
        s.reflect_about(&mirror);
        s.add_scaled(&mirror, coeff);
    }
    let ns = elapsed_ns(t);
    std::hint::black_box(s.amp(0));
    ns
}

/// The chunked reduction family: norm, one marginal, and one masked
/// probability per iteration — everything measurement-side code touches.
pub fn reductions_dense(n: usize, iters: u32) -> u64 {
    let s = StateVector::uniform(n);
    let mut sink = 0.0f64;
    let t = Instant::now();
    for _ in 0..iters {
        sink += s.norm();
        sink += s.prob_one(n - 1);
        sink += s.probability_where(|b| b & 1 == 0);
    }
    let ns = elapsed_ns(t);
    std::hint::black_box(sink);
    ns
}

/// Deterministic member/non-member words for the complement sweep (seed
/// `0x7_0DD5`) — shared by [`throughput_sweep`] and the criterion
/// `throughput` bench so both time the same instances.
pub fn sweep_words(k: u32, count: usize) -> Vec<Vec<Sym>> {
    let mut rng = StdRng::seed_from_u64(0x7_0DD5);
    (0..count)
        .map(|i| {
            if i.is_multiple_of(2) {
                random_member(k, &mut rng).encode()
            } else {
                random_nonmember(k, 1 + i % 4, &mut rng).encode()
            }
        })
        .collect()
}

/// End-to-end fleet cell: a 4-instance complement sweep through the dense
/// recognizer on a serial [`BatchRunner`] — the whole E-family pipeline
/// (token loop, gates, reductions, verdicts), not one isolated kernel.
pub fn throughput_sweep(qubits: usize, iters: u32) -> u64 {
    let words = sweep_words(k_for(qubits), 4);
    let runner = BatchRunner::serial();
    let mut sink = 0usize;
    let t = Instant::now();
    for _ in 0..iters {
        sink += complement_sweep_in::<StateVector>(&words, 0xBA7C4, &runner).accepted;
    }
    let ns = elapsed_ns(t);
    std::hint::black_box(sink);
    ns
}

/// The `1^k # (b^{2^{2k}} #)^{3·2^k}` A3 shape with independently random
/// blocks (seed `0xADAB2`): the `z` copies stop uncomputing the `h`
/// branch, the support crosses the promotion threshold mid-stream, and
/// adaptive backends finish on the dense kernels. Shared with the
/// criterion `adaptive` bench.
pub fn densifying_word(k: u32) -> Vec<Sym> {
    let mut rng = StdRng::seed_from_u64(0xADAB2);
    let m = 1usize << (2 * k);
    let blocks = 3 * (1usize << k);
    let mut word = Vec::with_capacity(k as usize + 1 + blocks * (m + 1));
    word.extend(std::iter::repeat_n(Sym::One, k as usize));
    word.push(Sym::Hash);
    for _ in 0..blocks {
        word.extend((0..m).map(|_| if rng.gen() { Sym::One } else { Sym::Zero }));
        word.push(Sym::Hash);
    }
    word
}

/// End-to-end adaptive cell: one A3 densifying stream on `AdaptiveState`
/// — sparse until the promotion threshold, then the parallel dense
/// kernels, so the SIMD axis shows up in the post-promotion phase.
pub fn adaptive_densify(qubits: usize, iters: u32) -> u64 {
    let word = densifying_word(k_for(qubits));
    let mut sink = 0.0f64;
    let t = Instant::now();
    for _ in 0..iters {
        let mut a3 = GroverStreamer::<AdaptiveState>::with_j_seed_in(3, 0);
        a3.feed_all(&word);
        sink += a3.detection_probability();
    }
    let ns = elapsed_ns(t);
    std::hint::black_box(sink);
    ns
}

/// Calibrate an iteration count so one sample takes roughly `target_ns`,
/// then collect `samples` per-iteration timings. `run(iters)` returns the
/// elapsed nanoseconds for `iters` iterations of the workload.
fn measure(mut run: impl FnMut(u32) -> u64, target_ns: u64, samples: usize) -> Timing {
    let probe = run(1).max(1);
    let iters = u32::try_from((target_ns / probe).clamp(1, 100_000)).expect("clamped");
    let mut per_iter: Vec<u64> = (0..samples)
        .map(|_| run(iters) / u64::from(iters))
        .collect();
    per_iter.sort_unstable();
    Timing {
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        max_ns: per_iter[per_iter.len() - 1],
        samples,
        iters,
    }
}

/// The scalar-vs-SIMD suite: `(name, runner, full sizes, reduced sizes)`.
type Suite = [(
    &'static str,
    fn(usize, u32) -> u64,
    &'static [usize],
    &'static [usize],
); 5];

const SUITE: Suite = [
    ("gate_sweep_dense", gate_sweep_dense, &[14, 16, 18], &[10]),
    ("reflect_axpy", reflect_axpy, &[16], &[10]),
    ("reductions_dense", reductions_dense, &[16], &[10]),
    ("throughput_sweep", throughput_sweep, &[8], &[6]),
    ("adaptive_densify", adaptive_densify, &[10], &[6]),
];

/// Forces one SIMD dispatch level for its lifetime and restores automatic
/// detection on drop, even if a benchmark panics. The criterion benches
/// reuse it around the `pub` workload functions.
pub struct ForceGuard;

impl ForceGuard {
    /// Forces `level` (`None` = auto-detect) and arms the reset-on-drop.
    #[must_use = "dispatch resets when the guard drops"]
    pub fn force(level: Option<SimdLevel>) -> Self {
        simd::force(level);
        ForceGuard
    }
}

impl Drop for ForceGuard {
    fn drop(&mut self) {
        simd::force(None);
    }
}

/// A collision-free scratch path for one benchmark store.
fn bench_path(name: &str, mode: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "oqsc-bench-{}-{name}-{mode}.cps",
        std::process::id()
    ))
}

/// `count` checkpoints of one dense A3 streamer mid-run — the payload set
/// every store cell works over. Dense amplitude snapshots are the store's
/// design-center payload: big, structured, and highly compressible.
fn grover_checkpoints(qubits: usize, count: usize) -> Vec<SessionCheckpoint> {
    let k = k_for(qubits);
    let mut rng = StdRng::seed_from_u64(0xC0DE + qubits as u64);
    let word = random_member(k, &mut rng).encode();
    let step = (word.len() / count).max(1);
    let mut session = Session::new(GroverStreamer::<StateVector>::with_j_seed_in(3, 0));
    let mut out = Vec::new();
    for (i, &sym) in word.iter().enumerate() {
        session.feed(sym);
        if (i + 1).is_multiple_of(step) && out.len() < count {
            out.push(session.suspend());
        }
    }
    out
}

/// Measures the three store cells (`checkpoint_roundtrip`, `store_open`,
/// `store_recover`) in both payload modes. SIMD-independent: the work is
/// framing, hashing, compression and I/O, not amplitude arithmetic.
fn store_cells(results: &mut Vec<ResultRow>, reduced: bool, target_ns: u64, samples: usize) {
    type Streamer = GroverStreamer<StateVector>;
    let qubits = if reduced { 6 } else { 10 };
    let cps = grover_checkpoints(qubits, STORE_BENCH_CHECKPOINTS);
    for (mode, compress) in [("uncompressed", false), ("compressed", true)] {
        // Round trip: fresh store, append every checkpoint, read each back.
        let rt_path = bench_path("roundtrip", mode);
        let timing = measure(
            |iters| {
                let t = Instant::now();
                for _ in 0..iters {
                    let _ = std::fs::remove_file(&rt_path);
                    let mut store =
                        CheckpointStore::create_for::<Streamer>(&rt_path).expect("create store");
                    store.set_compression(compress);
                    let keys: Vec<u128> = cps
                        .iter()
                        .enumerate()
                        .map(|(i, cp)| store.append(i as u64, cp).expect("append"))
                        .collect();
                    let mut sink = 0u64;
                    for key in keys {
                        sink ^= store.get(key).expect("get").position();
                    }
                    std::hint::black_box(sink);
                }
                elapsed_ns(t)
            },
            target_ns,
            samples,
        );
        results.push(ResultRow {
            bench: "checkpoint_roundtrip",
            qubits,
            mode,
            timing,
        });
        let _ = std::fs::remove_file(&rt_path);

        // A prebuilt log shared by the open and recover cells.
        let log_path = bench_path("openlog", mode);
        let _ = std::fs::remove_file(&log_path);
        {
            let mut store =
                CheckpointStore::create_for::<Streamer>(&log_path).expect("create store");
            store.set_compression(compress);
            for (i, cp) in cps.iter().enumerate() {
                store.append(i as u64, cp).expect("append");
            }
        }
        let timing = measure(
            |iters| {
                let t = Instant::now();
                for _ in 0..iters {
                    let store = CheckpointStore::open_for::<Streamer>(&log_path).expect("open");
                    std::hint::black_box(store.records());
                }
                elapsed_ns(t)
            },
            target_ns,
            samples,
        );
        results.push(ResultRow {
            bench: "store_open",
            qubits,
            mode,
            timing,
        });
        let timing = measure(
            |iters| {
                use std::io::Write;
                let t = Instant::now();
                for _ in 0..iters {
                    // Tear the tail; recover salvages the full prefix and
                    // truncates the garbage away, so every iteration sees
                    // the same file.
                    let mut f = std::fs::OpenOptions::new()
                        .append(true)
                        .open(&log_path)
                        .expect("open for tear");
                    f.write_all(&[0xA5; 13]).expect("tear");
                    drop(f);
                    let (store, report) =
                        CheckpointStore::recover_for::<Streamer>(&log_path).expect("recover");
                    std::hint::black_box((store.records(), report.salvaged_records));
                }
                elapsed_ns(t)
            },
            target_ns,
            samples,
        );
        results.push(ResultRow {
            bench: "store_recover",
            qubits,
            mode,
            timing,
        });
        let _ = std::fs::remove_file(&log_path);
    }
}

/// Dense-backend E6 instance builder: the same member/non-member words as
/// `e6_task`, driven by the Theorem 3.4 dense recognizer instead of the
/// classical Proposition 3.7 decider — the sweep whose checkpoints are
/// dense amplitude snapshots.
fn e6_dense_task(i: usize) -> (ComplementRecognizer<StateVector>, std::vec::IntoIter<Sym>) {
    let k = 1 + (i / 2) as u32;
    let mut rng = StdRng::seed_from_u64(4000 + u64::from(k));
    let member = random_member(k, &mut rng);
    let non = random_nonmember(k, 1, &mut rng);
    let first = ComplementRecognizer::new_in(&mut rng);
    if i.is_multiple_of(2) {
        (first, member.encode().into_iter())
    } else {
        let second = ComplementRecognizer::new_in(&mut rng);
        (second, non.encode().into_iter())
    }
}

/// Runs one resumable sweep twice — compression off, then on — into
/// scratch stores and reports both on-disk footprints.
fn store_row<D, W, F>(sweep: &'static str, count: usize, every: usize, task: F) -> StoreRow
where
    D: Checkpointable,
    W: IntoIterator<Item = Sym>,
    W::IntoIter: Send,
    F: Fn(usize) -> (D, W) + Send + Sync + Copy,
{
    let runner = BatchRunner::serial();
    let mut sizes = [0u64; 2];
    let mut records = 0usize;
    for (slot, compress) in [(0usize, false), (1usize, true)] {
        let path = bench_path(sweep, if compress { "comp" } else { "raw" });
        let _ = std::fs::remove_file(&path);
        let mut store = CheckpointStore::create_for::<D>(&path).expect("create store");
        store.set_compression(compress);
        runner
            .run_resumable(count, every, &mut store, task)
            .expect("sweep");
        records = store.records();
        sizes[slot] = store.len_bytes();
        drop(store);
        let _ = std::fs::remove_file(&path);
    }
    StoreRow {
        sweep,
        records,
        uncompressed_bytes: sizes[0],
        compressed_bytes: sizes[1],
    }
}

/// The `stores` rows: real dense-backend E6 and F1 sweeps persisted
/// through [`BatchRunner::run_resumable`] at a fixed checkpoint cadence,
/// compressed vs uncompressed.
fn sweep_store_rows(reduced: bool) -> Vec<StoreRow> {
    let (k_max, every) = if reduced { (2u32, 64usize) } else { (4, 256) };
    let mut rows = Vec::new();
    rows.push(store_row(
        "e6-dense",
        2 * k_max as usize,
        every,
        e6_dense_task,
    ));
    let seeds = f1_seeds(k_max);
    rows.push(store_row("f1-dense", seeds.len(), every, |i| {
        separation_quantum_task(1, &seeds, i)
    }));
    rows
}

/// Tokens each mux-cell session streams end to end.
pub const MUX_WORD_LEN: usize = 32;

/// Tokens per `feed` batch in the mux cells (the `Session::feed_slice`
/// fast path's batch size).
pub const MUX_CHUNK: usize = 8;

/// The deterministic word every mux-cell session streams: alternating
/// bits with a `#` every 8th token, [`MUX_WORD_LEN`] tokens long.
pub fn mux_word() -> Vec<Sym> {
    (0..MUX_WORD_LEN)
        .map(|i| {
            if (i + 1).is_multiple_of(8) {
                Sym::Hash
            } else if i.is_multiple_of(2) {
                Sym::Zero
            } else {
                Sym::One
            }
        })
        .collect()
}

/// The live-tier byte budget that fits roughly `live_sessions` resident
/// mux-cell sessions, probed from the actual checkpoint size of the
/// cell's decider (the engine's cost model is checkpointed bytes).
pub fn mux_live_budget(live_sessions: usize) -> usize {
    let cost = Session::new(DeciderKind::Format.build(0))
        .suspend()
        .byte_len();
    live_sessions * cost
}

/// The mux throughput cell: `sessions` concurrent A1 format-checker
/// sessions — each fed [`MUX_WORD_LEN`] tokens in [`MUX_CHUNK`]-token
/// batches — through one [`MuxEngine`] whose live tier holds
/// `live_budget_bytes`, on `workers` threads. Far more sessions than fit
/// live, so the engine churns through its warm tier constantly. Returns
/// elapsed nanoseconds and the engine's final statistics.
pub fn mux_feed(sessions: usize, live_budget_bytes: usize, workers: usize) -> (u64, MuxStats) {
    let word = mux_word();
    let engine = MuxEngine::new(MuxConfig {
        live_bytes_budget: live_budget_bytes,
        warm_bytes_budget: usize::MAX,
        shards: 64,
        ..MuxConfig::default()
    });
    let fleet = (0..sessions)
        .map(|i| (i as u64, DeciderKind::Format.build(i as u64), word.clone()))
        .collect();
    let t = Instant::now();
    run_fleet(&engine, fleet, MUX_CHUNK, workers).expect("mux fleet");
    (elapsed_ns(t), engine.stats())
}

/// The eviction head-to-head cell: a *heterogeneous* fleet — every
/// fourth session a dense Grover streamer with a checkpoint an order of
/// magnitude bigger than the format checkers around it — churned under
/// `policy`. Size-aware eviction should keep the many cheap sessions
/// resident and let the few big ones churn; recency-only eviction
/// cycles everything. Returns elapsed nanoseconds and the stats.
pub fn eviction_feed(
    sessions: usize,
    live_budget_bytes: usize,
    workers: usize,
    policy: EvictionPolicy,
) -> (u64, MuxStats) {
    let word = mux_word();
    let engine = MuxEngine::new(MuxConfig {
        live_bytes_budget: live_budget_bytes,
        warm_bytes_budget: usize::MAX,
        shards: 64,
        eviction: policy,
    });
    let fleet = (0..sessions)
        .map(|i| {
            let kind = if i.is_multiple_of(4) {
                DeciderKind::GroverDense
            } else {
                DeciderKind::Format
            };
            (i as u64, kind.build(i as u64), word.clone())
        })
        .collect();
    let t = Instant::now();
    run_fleet(&engine, fleet, MUX_CHUNK, workers).expect("eviction fleet");
    (elapsed_ns(t), engine.stats())
}

/// The `eviction` rows: [`eviction_feed`] once per policy on the same
/// cell, so the committed record carries the measured LRU-vs-GDSF
/// verdict next to the numbers that produced it.
fn eviction_rows(reduced: bool) -> Vec<EvictionRow> {
    let (sessions, live_sessions, workers) = if reduced {
        (800, 48, 2usize)
    } else {
        (20_000, 256, 8)
    };
    // Budget in units of the *mixed* fleet's average checkpoint cost,
    // probed like `mux_live_budget` but over the actual kind mix.
    let probe = |kind: DeciderKind| Session::new(kind.build(0)).suspend().byte_len();
    let avg_cost = (probe(DeciderKind::GroverDense) + 3 * probe(DeciderKind::Format)) / 4;
    let live_budget_bytes = live_sessions * avg_cost;
    EvictionPolicy::ALL
        .into_iter()
        .map(|policy| {
            let (ns, stats) = eviction_feed(sessions, live_budget_bytes, workers, policy);
            EvictionRow {
                policy: policy.name(),
                sessions,
                live_budget_bytes,
                workers,
                tokens: stats.tokens,
                tokens_per_sec: stats.tokens.saturating_mul(1_000_000_000) / ns.max(1),
                evictions: stats.evictions,
                hydrations: stats.hydrations,
            }
        })
        .collect()
}

/// Drives `sessions` format sessions through a served Unix socket and
/// times the feed phase: per-token `FEED` round trips (one request per
/// token, round-robin across sessions — today's worst case) vs one
/// pipelined `FEEDS` line per session. Returns `(feed_ns, tokens)`.
fn socket_feed_phase(sessions: usize, batched: bool) -> (u64, u64) {
    let path = std::env::temp_dir().join(format!(
        "oqsc-bench-mux-batched-{}-{batched}.sock",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let addr = path.display().to_string();
    let server = Server::bind(
        &addr,
        ServerConfig {
            threads: 2,
            mux: MuxConfig {
                live_bytes_budget: mux_live_budget(16),
                warm_bytes_budget: 1 << 30,
                shards: 16,
                ..MuxConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind bench server");
    let handle = std::thread::spawn(move || server.run().expect("bench server"));
    let word = mux_word();
    let (ns, tokens) = drive_feed_phase(&addr, sessions, batched, &word);
    handle.join().expect("bench server thread");
    (ns, tokens)
}

/// The shared client side of [`socket_feed_phase`] and the router cell:
/// open all sessions, time the feed phase in the requested shape,
/// finish everything, shut the endpoint down.
fn drive_feed_phase(addr: &str, sessions: usize, batched: bool, word: &[Sym]) -> (u64, u64) {
    let mut client = LineClient::connect(addr).expect("connect bench client");
    let opens: Vec<String> = (0..sessions)
        .map(|i| format!("OPEN {i} format {i}"))
        .collect();
    for response in client.pipeline(&opens).expect("open fleet") {
        assert!(response.starts_with("OK "), "open failed: {response}");
    }
    let t = Instant::now();
    if batched {
        let chunks: Vec<Vec<Sym>> = word.chunks(MUX_CHUNK).map(|c| c.to_vec()).collect();
        let feeds: Vec<String> = (0..sessions)
            .map(|i| feeds_line(i as u64, &chunks))
            .collect();
        for response in client.pipeline(&feeds).expect("batched feeds") {
            assert!(response.starts_with("OK "), "feeds failed: {response}");
        }
    } else {
        for pos in 0..word.len() {
            let text = oqsc_lang::token::to_string(&word[pos..=pos]);
            for i in 0..sessions {
                let request = format!("FEED {i} {text}");
                let response = client.ask(&request).expect("feed token");
                assert!(response.starts_with("OK "), "feed failed: {response}");
            }
        }
    }
    let ns = elapsed_ns(t);
    let finishes: Vec<String> = (0..sessions).map(|i| format!("FINISH {i}")).collect();
    for response in client.pipeline(&finishes).expect("finish fleet") {
        assert!(
            response.starts_with("OUTCOME "),
            "finish failed: {response}"
        );
    }
    let shutdown = client.ask("SHUTDOWN").expect("shutdown");
    assert_eq!(shutdown, "OK shutdown");
    (ns, (sessions * word.len()) as u64)
}

/// The `mux_batched` rows: the socket-driven churn workload fed
/// per-token and batched, with the batched row carrying its speedup
/// over the per-token baseline (the tentpole's ≥3× acceptance number).
fn mux_batched_rows(reduced: bool) -> Vec<BatchedRow> {
    let sessions = if reduced { 64 } else { 256 };
    let mut rows = Vec::new();
    let mut feed_ns = 0u64;
    for (mode, batched) in [("feed", false), ("feeds", true)] {
        let (ns, tokens) = socket_feed_phase(sessions, batched);
        if !batched {
            feed_ns = ns;
        }
        rows.push(BatchedRow {
            mode,
            sessions,
            tokens,
            tokens_per_sec: tokens.saturating_mul(1_000_000_000) / ns.max(1),
            speedup_vs_feed: feed_ns as f64 / ns.max(1) as f64,
        });
    }
    rows
}

/// The `router` rows: the batched workload driven through a
/// consistent-hash router over 1 and 2 backend engines — the scale-out
/// overhead/headroom measurement next to the direct-socket rows.
fn router_rows(reduced: bool) -> Vec<RouterRow> {
    let sessions = if reduced { 64 } else { 256 };
    [1usize, 2]
        .into_iter()
        .map(|engines| {
            let stamp = std::process::id();
            let mut engine_addrs = Vec::new();
            let mut engine_handles = Vec::new();
            for e in 0..engines {
                let path = std::env::temp_dir()
                    .join(format!("oqsc-bench-router-{stamp}-{engines}-{e}.sock"));
                let _ = std::fs::remove_file(&path);
                let addr = path.display().to_string();
                let server = Server::bind(
                    &addr,
                    ServerConfig {
                        threads: 2,
                        mux: MuxConfig {
                            live_bytes_budget: mux_live_budget(16),
                            warm_bytes_budget: 1 << 30,
                            shards: 16,
                            ..MuxConfig::default()
                        },
                        ..ServerConfig::default()
                    },
                )
                .expect("bind bench engine");
                engine_addrs.push(addr);
                engine_handles.push(std::thread::spawn(move || {
                    server.run().expect("bench engine")
                }));
            }
            let front_path = std::env::temp_dir()
                .join(format!("oqsc-bench-router-{stamp}-{engines}-front.sock"));
            let _ = std::fs::remove_file(&front_path);
            let front = front_path.display().to_string();
            let router =
                Router::bind(&front, engine_addrs, RouterConfig::default()).expect("bind router");
            let router_handle = std::thread::spawn(move || router.run().expect("bench router"));
            let word = mux_word();
            // SHUTDOWN at the router broadcasts to the engines.
            let (ns, tokens) = drive_feed_phase(&front, sessions, true, &word);
            router_handle.join().expect("router thread");
            for handle in engine_handles {
                handle.join().expect("engine thread");
            }
            RouterRow {
                engines,
                sessions,
                tokens,
                tokens_per_sec: tokens.saturating_mul(1_000_000_000) / ns.max(1),
            }
        })
        .collect()
}

/// The `mux` rows: the full record serves 100k sessions under a live
/// set of ~512 (0.5% of the fleet — the serving acceptance ratio), at
/// one and at eight workers.
fn mux_rows(reduced: bool) -> Vec<MuxRow> {
    let (sessions, live_sessions, worker_counts) = if reduced {
        (2_000, 64, [1usize, 2])
    } else {
        (100_000, 512, [1usize, 8])
    };
    let live_budget_bytes = mux_live_budget(live_sessions);
    worker_counts
        .into_iter()
        .map(|workers| {
            let (ns, stats) = mux_feed(sessions, live_budget_bytes, workers);
            MuxRow {
                sessions,
                live_budget_bytes,
                workers,
                tokens: stats.tokens,
                tokens_per_sec: stats.tokens.saturating_mul(1_000_000_000) / ns.max(1),
                peak_live: stats.peak_live,
                evictions: stats.evictions,
                hydrations: stats.hydrations,
            }
        })
        .collect()
}

/// Run the full suite and return the JSON record.
///
/// The scalar pass runs first (under `simd::force(Some(Scalar))`), then the
/// auto pass, then the SIMD-independent store cells and sweep-store rows;
/// dispatch is restored to auto-detection before returning.
pub fn run_record(opts: RecordOpts) -> String {
    let _guard = ForceGuard::force(None);
    let (target_ns, samples) = if opts.reduced {
        (SAMPLE_TARGET_NS_REDUCED, SAMPLES_REDUCED)
    } else {
        (SAMPLE_TARGET_NS, SAMPLES)
    };
    let mut results: Vec<ResultRow> = Vec::new();
    for (mode, level) in [("scalar", Some(SimdLevel::Scalar)), ("simd", None)] {
        simd::force(level);
        for (bench, run, full, reduced) in SUITE {
            let sizes = if opts.reduced { reduced } else { full };
            for &n in sizes {
                results.push(ResultRow {
                    bench,
                    qubits: n,
                    mode,
                    timing: measure(|iters| run(n, iters), target_ns, samples),
                });
            }
        }
    }
    simd::force(None);
    store_cells(&mut results, opts.reduced, target_ns, samples);
    let stores = sweep_store_rows(opts.reduced);
    let mux = mux_rows(opts.reduced);
    let batched = mux_batched_rows(opts.reduced);
    let routed = router_rows(opts.reduced);
    let eviction = eviction_rows(opts.reduced);
    render_json(&results, &stores, &mux, &batched, &routed, &eviction)
}

/// Scalar-median / simd-median for every `(bench, qubits)` pair that has
/// both modes measured (the store cells have no scalar/simd axis and so
/// produce no derived rows).
fn derived_speedups(results: &[ResultRow]) -> Vec<(&'static str, usize, f64)> {
    let mut out = Vec::new();
    for r in results.iter().filter(|r| r.mode == "scalar") {
        if let Some(s) = results
            .iter()
            .find(|s| s.mode == "simd" && s.bench == r.bench && s.qubits == r.qubits)
        {
            let ratio = r.timing.median_ns as f64 / s.timing.median_ns.max(1) as f64;
            out.push((r.bench, r.qubits, ratio));
        }
    }
    out
}

/// Serialize the record. Keys are emitted in a fixed order so two runs of
/// the same binary differ only in the measured numbers.
fn render_json(
    results: &[ResultRow],
    stores: &[StoreRow],
    mux: &[MuxRow],
    batched: &[BatchedRow],
    routed: &[RouterRow],
    eviction: &[EvictionRow],
) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"oqsc-bench-record/v1\",\n");
    json.push_str(&format!(
        "  \"host\": {{ \"arch\": \"{}\", \"simd\": \"{}\", \"threads\": {} }},\n",
        std::env::consts::ARCH,
        simd::detected().name(),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"bench\": \"{}\", \"qubits\": {}, \"mode\": \"{}\", \
             \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
             \"samples\": {}, \"iters\": {} }}{}\n",
            r.bench,
            r.qubits,
            r.mode,
            r.timing.median_ns,
            r.timing.min_ns,
            r.timing.max_ns,
            r.timing.samples,
            r.timing.iters,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"derived\": [\n");
    let derived = derived_speedups(results);
    for (i, (bench, qubits, speedup)) in derived.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"bench\": \"{bench}\", \"qubits\": {qubits}, \"speedup\": {speedup:.3} }}{}\n",
            if i + 1 == derived.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"stores\": [\n");
    for (i, s) in stores.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"sweep\": \"{}\", \"records\": {}, \"uncompressed_bytes\": {}, \
             \"compressed_bytes\": {}, \"shrink\": {:.3} }}{}\n",
            s.sweep,
            s.records,
            s.uncompressed_bytes,
            s.compressed_bytes,
            s.shrink(),
            if i + 1 == stores.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"mux\": [\n");
    for (i, m) in mux.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"bench\": \"mux_feed\", \"sessions\": {}, \"live_budget_bytes\": {}, \
             \"workers\": {}, \"tokens\": {}, \"tokens_per_sec\": {}, \"peak_live\": {}, \
             \"evictions\": {}, \"hydrations\": {} }}{}\n",
            m.sessions,
            m.live_budget_bytes,
            m.workers,
            m.tokens,
            m.tokens_per_sec,
            m.peak_live,
            m.evictions,
            m.hydrations,
            if i + 1 == mux.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"mux_batched\": [\n");
    for (i, b) in batched.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"bench\": \"mux_batched\", \"mode\": \"{}\", \"sessions\": {}, \
             \"tokens\": {}, \"tokens_per_sec\": {}, \"speedup_vs_feed\": {:.3} }}{}\n",
            b.mode,
            b.sessions,
            b.tokens,
            b.tokens_per_sec,
            b.speedup_vs_feed,
            if i + 1 == batched.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"router\": [\n");
    for (i, r) in routed.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"bench\": \"router\", \"engines\": {}, \"sessions\": {}, \
             \"tokens\": {}, \"tokens_per_sec\": {} }}{}\n",
            r.engines,
            r.sessions,
            r.tokens,
            r.tokens_per_sec,
            if i + 1 == routed.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"eviction\": [\n");
    for (i, e) in eviction.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"bench\": \"eviction\", \"policy\": \"{}\", \"sessions\": {}, \
             \"live_budget_bytes\": {}, \"workers\": {}, \"tokens\": {}, \
             \"tokens_per_sec\": {}, \"evictions\": {}, \"hydrations\": {} }}{}\n",
            e.policy,
            e.sessions,
            e.live_budget_bytes,
            e.workers,
            e.tokens,
            e.tokens_per_sec,
            e.evictions,
            e.hydrations,
            if i + 1 == eviction.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Structural smoke test on the reduced suite: every expected key is
    /// present, both SIMD modes appear for every suite bench, both payload
    /// modes appear for every store cell, and both sweep-store rows exist.
    #[test]
    fn reduced_record_has_stable_schema() {
        let json = run_record(RecordOpts { reduced: true });
        for key in [
            "\"schema\": \"oqsc-bench-record/v1\"",
            "\"host\"",
            "\"arch\"",
            "\"simd\"",
            "\"threads\"",
            "\"results\"",
            "\"derived\"",
            "\"median_ns\"",
            "\"min_ns\"",
            "\"max_ns\"",
            "\"samples\"",
            "\"iters\"",
            "\"speedup\"",
            "\"stores\"",
            "\"records\"",
            "\"uncompressed_bytes\"",
            "\"compressed_bytes\"",
            "\"shrink\"",
            "\"mux\"",
            "\"bench\": \"mux_feed\"",
            "\"sessions\"",
            "\"live_budget_bytes\"",
            "\"workers\"",
            "\"tokens\"",
            "\"tokens_per_sec\"",
            "\"peak_live\"",
            "\"evictions\"",
            "\"hydrations\"",
            "\"mux_batched\"",
            "\"bench\": \"mux_batched\"",
            "\"mode\": \"feed\"",
            "\"mode\": \"feeds\"",
            "\"speedup_vs_feed\"",
            "\"router\"",
            "\"bench\": \"router\"",
            "\"engines\": 1",
            "\"engines\": 2",
            "\"eviction\"",
            "\"bench\": \"eviction\"",
            "\"policy\": \"lru\"",
            "\"policy\": \"gdsf\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        for (bench, _, _, sizes) in SUITE {
            for mode in ["scalar", "simd"] {
                let cell = format!(
                    "\"bench\": \"{bench}\", \"qubits\": {}, \"mode\": \"{mode}\"",
                    sizes[0]
                );
                assert!(json.contains(&cell), "missing {cell} in:\n{json}");
            }
        }
        for bench in ["checkpoint_roundtrip", "store_open", "store_recover"] {
            for mode in ["uncompressed", "compressed"] {
                let cell = format!("\"bench\": \"{bench}\", \"qubits\": 6, \"mode\": \"{mode}\"");
                assert!(json.contains(&cell), "missing {cell} in:\n{json}");
            }
        }
        for sweep in ["e6-dense", "f1-dense"] {
            assert!(
                json.contains(&format!("\"sweep\": \"{sweep}\"")),
                "missing {sweep} row"
            );
        }
        // Dense-backend stores must actually shrink under compression even
        // at the reduced sizes (the committed full record shows ≥2×).
        let rows = sweep_store_rows(true);
        for row in &rows {
            assert!(
                row.shrink() > 1.0,
                "{} store did not shrink: {} -> {}",
                row.sweep,
                row.uncompressed_bytes,
                row.compressed_bytes
            );
        }
        // Dispatch must be restored after the run.
        assert_eq!(simd::active(), simd::detected());
    }

    /// The mux cells must actually enforce the live budget: the resident
    /// high-water mark stays around the budgeted live-set size (shard
    /// granularity gives a little slack), far below the fleet size, and
    /// every session's full word is accounted for.
    #[test]
    fn mux_cells_hold_the_live_set_under_budget() {
        let rows = mux_rows(true);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.sessions, 2_000);
            assert_eq!(row.tokens, (row.sessions * MUX_WORD_LEN) as u64);
            assert!(
                row.peak_live < 2 * 64 + 64,
                "live set blew the budget: peak {} for ~64 budgeted",
                row.peak_live
            );
            assert!(row.evictions > row.sessions as u64, "no churn: {row:?}");
            assert!(row.tokens_per_sec > 0);
        }
    }
}
