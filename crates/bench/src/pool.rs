//! Cross-process sweep scheduling: shard an experiment over OS worker
//! processes, optionally persisting checkpoints so a killed worker can
//! be resumed.
//!
//! Threads (PR 2) and thread-migration (PR 3) scale a sweep inside one
//! address space; [`ProcessPool`] is the next axis: the parent spawns
//! the `experiments` binary in **worker mode** once per shard
//! (`--worker --sweep … --shard w --of P`), each worker re-derives its
//! instances from the sweep's pure per-index task functions (nothing
//! but indices crosses the process boundary), runs them serially, and
//! prints one `OUTCOME` line per instance on stdout. The parent merges
//! the shard outcomes into index-ordered [`BatchReport`]s and folds
//! them into the same table rows the in-process sweep produces — so a
//! 1/2/4-process run prints tables byte-identical to `--workers N`
//! in-process runs (the process-pool suite pins this).
//!
//! With a store prefix, each worker persists its sessions into its own
//! single-writer shard file
//! (`<prefix>.<fleet>.shard<w>of<P>.cps`) every `checkpoint_every`
//! tokens via [`BatchRunner::run_resumable_budgeted`]. A killed worker
//! (simulated deterministically by `--crash-after-tokens`, which makes
//! the worker stop dead mid-segment and exit with
//! [`WORKER_CRASH_EXIT`]) loses only its unpersisted tail: re-running
//! the pool with `resume` recovers each shard store, salvages the valid
//! record prefix, breaks the dead writer's orphaned lock, and continues
//! from the last persisted boundaries — producing the identical table.
//! Resuming must reuse the same process count: the shard file name
//! encodes `w` and `P`, so a different `P` simply starts fresh shards
//! rather than misassigning instances.

use crate::experiments::{
    e6_instance_count, e6_rows_from_report, e6_task, f1_seeds, f3_rows_from_reports, f4_budgets,
    f4_rows_from_reports, print_e6_rows, print_f1_rows, print_f3_rows, print_f4_rows, E6Row, F3Row,
    F4Row,
};
use oqsc_core::separation::{
    separation_classical_task, separation_quantum_task, separation_rows_from_reports, SeparationRow,
};
use oqsc_core::{f3_fingerprint_task, f4_sketch_task};
use oqsc_machine::{
    BatchReport, BatchRunner, CheckpointStore, Checkpointable, RunOutcome, SessionSchedule,
    StoreError,
};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// Exit code a worker uses when its token budget ran dry — the
/// deterministic stand-in for being killed mid-sweep. The parent maps
/// it to [`PoolError::WorkerCrashed`]; anything non-zero and different
/// is a real failure ([`PoolError::WorkerFailed`]).
pub const WORKER_CRASH_EXIT: i32 = 9;

/// How much of a worker's stderr an error carries, bounded so a runaway
/// child cannot balloon the parent's error path.
const STDERR_TAIL_BYTES: usize = 4096;

/// Bytes of the *head* kept when stderr overflows the budget. Rust
/// prints a panic message first and the (possibly huge, under
/// `RUST_BACKTRACE`) backtrace after it, while store/CLI errors are
/// final lines — keeping both ends preserves each.
const STDERR_HEAD_BYTES: usize = 1024;

/// At most [`STDERR_TAIL_BYTES`] of a worker's stderr, lossily decoded
/// and trimmed. Oversized output keeps the first [`STDERR_HEAD_BYTES`]
/// (where a panic message lives) and the trailing remainder (where
/// final error lines live), with `…` marking the elision.
fn stderr_tail(stderr: &[u8]) -> String {
    if stderr.len() <= STDERR_TAIL_BYTES {
        return String::from_utf8_lossy(stderr).trim_end().to_string();
    }
    let head = String::from_utf8_lossy(&stderr[..STDERR_HEAD_BYTES]);
    let tail_start = stderr.len() - (STDERR_TAIL_BYTES - STDERR_HEAD_BYTES);
    let tail = String::from_utf8_lossy(&stderr[tail_start..]);
    format!("{head}…{}", tail.trim_end())
}

/// Per-`k` fleet names for the F3 sweep (static, because outcome triples
/// carry `&'static str` fleet names across the worker protocol; the
/// table is the contract's bound, independent of the CLI's own `--k-max`
/// cap).
fn f3_fleet_name(k: u32) -> &'static str {
    const NAMES: [&str; 8] = ["k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8"];
    assert!(
        (1..=NAMES.len() as u32).contains(&k),
        "F3 sweeps support k in 1..={} (fleet names are static); got {k}",
        NAMES.len()
    );
    NAMES[k as usize - 1]
}

/// Per-budget fleet names for the F4 sweep (the budget set is the fixed
/// powers of two of [`f4_budgets`]).
fn f4_fleet_name(budget: usize) -> &'static str {
    match budget {
        1 => "b1",
        2 => "b2",
        4 => "b4",
        8 => "b8",
        16 => "b16",
        32 => "b32",
        64 => "b64",
        128 => "b128",
        256 => "b256",
        other => unreachable!("budget {other} is not in the F4 sweep"),
    }
}

/// A sweep the schedulers know how to run: the **single registry** of
/// experiments — every entry defines its decider fleets (name + instance
/// count), its pure per-index task functions, and its row merge, so one
/// engine drives it in-process ([`SweepSpec::rows_in_process`]), sharded
/// over worker processes ([`ProcessPool`]), and crash-recoverably
/// through the persistent store. Every instance must be a pure function
/// of its index (and the spec), so a worker process can re-derive its
/// shard from the spec alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepSpec {
    /// Experiment E6 (Proposition 3.7 decider) for `k ∈ 1..=k_max`.
    E6 {
        /// Largest language parameter measured.
        k_max: u32,
    },
    /// Experiment F1 (the separation table) for `k ∈ 1..=k_max`.
    F1 {
        /// Largest language parameter measured.
        k_max: u32,
    },
    /// Experiment F3 (A2 fingerprint false-accept rates) for
    /// `k ∈ 1..=k_max`, one Monte-Carlo fleet of `trials` per `k`.
    F3 {
        /// Largest language parameter measured.
        k_max: u32,
        /// Trials per `k` fleet.
        trials: usize,
    },
    /// Experiment F4 (sketch failure below √m) at `k`, one fleet of
    /// `trials` per budget in [`f4_budgets`].
    F4 {
        /// Language parameter.
        k: u32,
        /// Trials per budget fleet.
        trials: usize,
    },
}

impl SweepSpec {
    /// CLI name (`--sweep e6|f1|f3|f4`).
    pub fn name(&self) -> &'static str {
        match self {
            SweepSpec::E6 { .. } => "e6",
            SweepSpec::F1 { .. } => "f1",
            SweepSpec::F3 { .. } => "f3",
            SweepSpec::F4 { .. } => "f4",
        }
    }

    /// The sweep's language-parameter knob (what the CLI's `--k-max`
    /// sets: the largest `k` for E6/F1/F3, *the* `k` for F4).
    pub fn k_max(&self) -> u32 {
        match self {
            SweepSpec::E6 { k_max } | SweepSpec::F1 { k_max } | SweepSpec::F3 { k_max, .. } => {
                *k_max
            }
            SweepSpec::F4 { k, .. } => *k,
        }
    }

    /// Monte-Carlo fleet size, for the sweeps that have one (F3/F4).
    pub fn trials(&self) -> Option<usize> {
        match self {
            SweepSpec::E6 { .. } | SweepSpec::F1 { .. } => None,
            SweepSpec::F3 { trials, .. } | SweepSpec::F4 { trials, .. } => Some(*trials),
        }
    }

    /// Parses a CLI sweep name. `trials` is ignored by the sweeps that
    /// have no Monte-Carlo fleet (the CLI rejects `--trials` for them
    /// up front).
    pub fn from_cli(name: &str, k_max: u32, trials: usize) -> Option<SweepSpec> {
        match name {
            "e6" => Some(SweepSpec::E6 { k_max }),
            "f1" => Some(SweepSpec::F1 { k_max }),
            "f3" => Some(SweepSpec::F3 { k_max, trials }),
            "f4" => Some(SweepSpec::F4 { k: k_max, trials }),
            _ => None,
        }
    }

    /// The decider fleets this sweep runs, with their instance counts.
    /// (F1 runs two fleets over the same words: the quantum recognizers
    /// and the classical Proposition 3.7 deciders. F3 runs one fleet per
    /// `k`, F4 one per sketch budget.)
    pub fn fleets(&self) -> Vec<(&'static str, usize)> {
        match self {
            SweepSpec::E6 { k_max } => vec![("e6", e6_instance_count(*k_max))],
            SweepSpec::F1 { k_max } => {
                let n = *k_max as usize;
                vec![("quantum", n), ("classical", n)]
            }
            SweepSpec::F3 { k_max, trials } => {
                (1..=*k_max).map(|k| (f3_fleet_name(k), *trials)).collect()
            }
            SweepSpec::F4 { k, trials } => f4_budgets(*k)
                .into_iter()
                .map(|b| (f4_fleet_name(b), *trials))
                .collect(),
        }
    }

    /// Runs every fleet in-process under `runner`/`schedule` and merges
    /// the reports into table rows. This is the classic sweep path —
    /// `experiments --sweep … --workers N` without a store or process
    /// pool — and the reference the cross-process tables are
    /// byte-compared against; both end in [`rows_from_reports`], so they
    /// agree by construction.
    pub fn rows_in_process(&self, runner: &BatchRunner, schedule: SessionSchedule) -> SweepRows {
        let reports: Vec<BatchReport> = match *self {
            SweepSpec::E6 { k_max } => {
                vec![runner.run(e6_instance_count(k_max), schedule, e6_task)]
            }
            SweepSpec::F1 { k_max } => {
                let seeds = f1_seeds(k_max);
                vec![
                    runner.run(seeds.len(), schedule, |i| {
                        separation_quantum_task(1, &seeds, i)
                    }),
                    runner.run(seeds.len(), schedule, |i| {
                        separation_classical_task(1, &seeds, i)
                    }),
                ]
            }
            SweepSpec::F3 { k_max, trials } => (1..=k_max)
                .map(|k| runner.run(trials, schedule, |i| f3_fingerprint_task(k, i)))
                .collect(),
            SweepSpec::F4 { k, trials } => f4_budgets(k)
                .into_iter()
                .map(|budget| runner.run(trials, schedule, |i| f4_sketch_task(k, budget, i)))
                .collect(),
        };
        rows_from_reports(*self, &reports)
    }
}

/// Why a cross-process sweep failed.
#[derive(Debug)]
pub enum PoolError {
    /// Spawning or talking to a worker failed at the OS level.
    Io(std::io::Error),
    /// A shard checkpoint store could not be opened or written.
    Store(StoreError),
    /// A worker exited with a real error (not the crash exit).
    WorkerFailed {
        /// Which shard failed.
        shard: usize,
        /// Its exit code (`None`: killed by a signal).
        code: Option<i32>,
        /// The tail of the worker's stderr (panic message included), for
        /// the operator.
        stderr: String,
    },
    /// A worker hit its token budget and stopped dead (exit
    /// [`WORKER_CRASH_EXIT`]); resume the pool to continue.
    WorkerCrashed {
        /// Which shard crashed.
        shard: usize,
        /// The tail of the worker's stderr (what it said on its way
        /// down).
        stderr: String,
    },
    /// A worker's stdout violated the `OUTCOME` protocol, or the merged
    /// shards did not cover the instance space exactly once.
    Protocol(String),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Io(e) => write!(f, "process pool I/O error: {e}"),
            PoolError::Store(e) => write!(f, "process pool store error: {e}"),
            PoolError::WorkerFailed {
                shard,
                code,
                stderr,
            } => match code {
                Some(c) => write!(
                    f,
                    "worker shard {shard} failed with exit code {c}: {stderr}"
                ),
                None => write!(f, "worker shard {shard} was killed by a signal: {stderr}"),
            },
            PoolError::WorkerCrashed { shard, stderr } => {
                write!(
                    f,
                    "worker shard {shard} crashed (token budget exhausted); resume to continue"
                )?;
                if !stderr.is_empty() {
                    write!(f, ": {stderr}")?;
                }
                Ok(())
            }
            PoolError::Protocol(what) => write!(f, "worker protocol violation: {what}"),
        }
    }
}

impl std::error::Error for PoolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoolError::Io(e) => Some(e),
            PoolError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PoolError {
    fn from(e: std::io::Error) -> Self {
        PoolError::Io(e)
    }
}

impl From<StoreError> for PoolError {
    fn from(e: StoreError) -> Self {
        PoolError::Store(e)
    }
}

/// Per-run options shared by worker mode and the parent pool.
#[derive(Clone, Debug, Default)]
pub struct PoolRunOpts {
    /// Persist checkpoints under this path prefix (one store file per
    /// fleet per shard). `None`: run without persistence.
    pub store_prefix: Option<PathBuf>,
    /// Recover existing shard stores and continue from their last
    /// persisted boundaries; without it, a leftover store file is an
    /// error (stale-store protection), never silently reused.
    pub resume: bool,
    /// Tokens between persisted checkpoints (clamped to ≥ 1).
    pub checkpoint_every: usize,
    /// Testing hook: per fleet, stop dead after feeding this many
    /// tokens — the deterministic crash model. Requires a store prefix.
    pub crash_after_tokens: Option<u64>,
    /// Write fresh shard stores in the legacy v2 format (raw payloads,
    /// no compression) — the `--store-format 2` compatibility hook that
    /// lets tests and CI produce v2 logs for the upgrade path. Resuming
    /// an existing v2 store is still a typed `ReadOnly` error until
    /// `--compact` upgrades it.
    pub legacy_v2: bool,
    /// Batch-scheduler threads *inside each worker* (clamped to ≥ 1;
    /// `Default` = 1, one serial sweep per process). Reports are
    /// worker-count independent, so this only changes the wall clock.
    pub workers: usize,
}

/// The per-shard identity of one worker invocation.
#[derive(Clone, Copy, Debug)]
pub struct ShardId {
    /// This worker's shard index, `0 ≤ shard < of`.
    pub shard: usize,
    /// Total number of shards in the pool.
    pub of: usize,
}

/// The table rows a sweep produced, whatever path computed them.
#[derive(Clone, Debug, PartialEq)]
pub enum SweepRows {
    /// E6 rows.
    E6(Vec<E6Row>),
    /// F1 rows.
    F1(Vec<SeparationRow>),
    /// F3 rows.
    F3(Vec<F3Row>),
    /// F4 rows (the header names the language parameter).
    F4 {
        /// Language parameter the budgets were swept at.
        k: u32,
        /// The per-budget rows.
        rows: Vec<F4Row>,
    },
}

impl SweepRows {
    /// Prints the table with the same row formatters the all-tables
    /// binary uses, so every path prints byte-identical tables.
    pub fn print(&self) {
        match self {
            SweepRows::E6(rows) => print_e6_rows(rows),
            SweepRows::F1(rows) => print_f1_rows(rows),
            SweepRows::F3(rows) => print_f3_rows(rows),
            SweepRows::F4 { k, rows } => print_f4_rows(*k, rows),
        }
    }
}

/// Folds per-fleet [`BatchReport`]s (in [`SweepSpec::fleets`] order)
/// into table rows — the **single row-merge definition** every path
/// ends in: the in-process sweep, the single-process persistent run,
/// and the merged cross-process shards all call this, which is why
/// their printed tables are byte-identical by construction.
pub fn rows_from_reports(spec: SweepSpec, reports: &[BatchReport]) -> SweepRows {
    match spec {
        SweepSpec::E6 { k_max } => SweepRows::E6(e6_rows_from_report(k_max, &reports[0])),
        SweepSpec::F1 { .. } => {
            SweepRows::F1(separation_rows_from_reports(1, &reports[0], &reports[1]))
        }
        SweepSpec::F3 { k_max, .. } => SweepRows::F3(f3_rows_from_reports(k_max, reports)),
        SweepSpec::F4 { k, .. } => SweepRows::F4 {
            k,
            rows: f4_rows_from_reports(k, reports),
        },
    }
}

/// The store file owned by `(fleet, shard)` under `prefix`. Single
/// writer by construction: no two workers ever share a path, and the
/// name encodes the pool width so resuming at a different width starts
/// fresh instead of misassigning instances.
pub fn shard_store_path(prefix: &Path, fleet: &str, shard: ShardId) -> PathBuf {
    let mut os = prefix.as_os_str().to_os_string();
    os.push(format!(".{fleet}.shard{}of{}.cps", shard.shard, shard.of));
    PathBuf::from(os)
}

/// Every checkpoint store file under `prefix`, sorted: the `.cps` files
/// whose names extend the prefix's file name **at a `.` boundary** (the
/// shape [`shard_store_path`] writes), or `prefix` itself when it names
/// one store file directly. The separator requirement keeps sibling
/// runs apart: `--compact /data/run1` must never touch
/// `/data/run10.e6.shard0of2.cps`. This is what `experiments --compact
/// PREFIX` iterates — the operator passes the same prefix they swept
/// with.
pub fn find_store_files(prefix: &Path) -> std::io::Result<Vec<PathBuf>> {
    let name = prefix.file_name().map(|n| n.to_string_lossy().into_owned());
    if prefix.is_file() {
        if name.as_deref().is_some_and(|n| n.ends_with(".cps")) {
            return Ok(vec![prefix.to_path_buf()]);
        }
        return Ok(Vec::new());
    }
    let Some(stem) = name else {
        return Ok(Vec::new());
    };
    let stem_dot = format!("{stem}.");
    let dir = match prefix.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let file_name = entry.file_name().to_string_lossy().into_owned();
        if file_name.starts_with(&stem_dot) && file_name.ends_with(".cps") {
            found.push(entry.path());
        }
    }
    found.sort();
    Ok(found)
}

fn open_shard_store<D: Checkpointable>(
    path: &Path,
    resume: bool,
    legacy_v2: bool,
) -> Result<CheckpointStore, StoreError> {
    let version = if legacy_v2 {
        oqsc_machine::STORE_VERSION_V2
    } else {
        oqsc_machine::STORE_VERSION
    };
    if resume {
        // The scheduler owns these single-writer shard files, and resume
        // only runs after the parent reaped the previous worker — the
        // one situation where breaking an orphaned lock is sound. (A
        // kill before the first append leaves a lock but no store file;
        // break the orphan either way.)
        CheckpointStore::break_lock(path)?;
        if path.exists() {
            return CheckpointStore::recover_for::<D>(path).map(|(store, _)| store);
        }
        CheckpointStore::create_with_version(path, D::TYPE_TAG, version)
    } else {
        // Fresh runs refuse stale stores (`StoreError::AlreadyExists`).
        CheckpointStore::create_with_version(path, D::TYPE_TAG, version)
    }
}

/// The strided global indices `shard` owns out of a fleet of `count`
/// instances — the pool's one sharding rule, shared so every scheduler
/// that claims "shard w of P" means exactly the same instance set.
pub fn shard_indices(shard: ShardId, count: usize) -> Vec<usize> {
    (shard.shard..count).step_by(shard.of.max(1)).collect()
}

/// One visit to a fleet's task function with its concrete decider type.
///
/// [`SweepSpec::fleets`] names the fleets, but each fleet's task builds
/// a *different* decider type, so running "fleet X of spec S" needs a
/// generic call site per fleet. This trait inverts that: a scheduler
/// implements `visit` once, generically, and [`visit_fleet`] owns the
/// single spec-to-task dispatch — the process-pool shard runner and the
/// fabric worker both go through it, which is how their instance
/// derivations stay identical by construction.
trait FleetVisitor {
    /// What the visit produces.
    type Out;
    /// Runs against one fleet: `count` instances, each the pure function
    /// `task` of its global index.
    fn visit<D, W, F>(self, count: usize, task: F) -> Self::Out
    where
        D: Checkpointable,
        W: IntoIterator<Item = oqsc_lang::Sym>,
        W::IntoIter: Send,
        F: Fn(usize) -> (D, W) + Sync;
}

/// Dispatches `visitor` to `fleet`'s task function, or `None` when the
/// spec has no fleet of that name. The **only** place that pairs fleet
/// names with task functions.
fn visit_fleet<V: FleetVisitor>(spec: SweepSpec, fleet: &str, visitor: V) -> Option<V::Out> {
    match spec {
        SweepSpec::E6 { k_max } => {
            (fleet == "e6").then(|| visitor.visit(e6_instance_count(k_max), e6_task))
        }
        SweepSpec::F1 { k_max } => {
            let seeds = f1_seeds(k_max);
            let n = seeds.len();
            match fleet {
                "quantum" => Some(visitor.visit(n, move |i| separation_quantum_task(1, &seeds, i))),
                "classical" => {
                    Some(visitor.visit(n, move |i| separation_classical_task(1, &seeds, i)))
                }
                _ => None,
            }
        }
        SweepSpec::F3 { k_max, trials } => (1..=k_max)
            .find(|&k| f3_fleet_name(k) == fleet)
            .map(|k| visitor.visit(trials, move |i| f3_fingerprint_task(k, i))),
        SweepSpec::F4 { k, trials } => f4_budgets(k)
            .into_iter()
            .find(|&budget| f4_fleet_name(budget) == fleet)
            .map(|budget| visitor.visit(trials, move |i| f4_sketch_task(k, budget, i))),
    }
}

/// Runs one fleet's shard (strided indices, optional persistent store).
/// Produces `Ok(true)` when the token budget crashed the fleet mid-run
/// (outcomes gathered so far are discarded — a crash loses everything
/// that is not in the store).
struct ShardRun<'a> {
    fleet: &'static str,
    shard: ShardId,
    opts: &'a PoolRunOpts,
    out: &'a mut WorkerOutcomes,
}

impl FleetVisitor for ShardRun<'_> {
    type Out = Result<bool, PoolError>;

    fn visit<D, W, F>(self, count: usize, task: F) -> Self::Out
    where
        D: Checkpointable,
        W: IntoIterator<Item = oqsc_lang::Sym>,
        W::IntoIter: Send,
        F: Fn(usize) -> (D, W) + Sync,
    {
        let indices = shard_indices(self.shard, count);
        let local_task = |j: usize| task(indices[j]);
        let runner = BatchRunner::new(self.opts.workers.max(1));
        let report = match &self.opts.store_prefix {
            Some(prefix) => {
                let path = shard_store_path(prefix, self.fleet, self.shard);
                let mut store =
                    open_shard_store::<D>(&path, self.opts.resume, self.opts.legacy_v2)?;
                let budget = self.opts.crash_after_tokens.unwrap_or(u64::MAX);
                match runner.run_resumable_budgeted(
                    indices.len(),
                    self.opts.checkpoint_every.max(1),
                    &mut store,
                    budget,
                    local_task,
                )? {
                    Some(report) => report,
                    None => return Ok(true),
                }
            }
            None => {
                if self.opts.crash_after_tokens.is_some() {
                    return Err(PoolError::Protocol(
                        "--crash-after-tokens requires --store (a crash without \
                         persistence cannot be resumed)"
                            .into(),
                    ));
                }
                runner.run(indices.len(), SessionSchedule::Uninterrupted, local_task)
            }
        };
        for (j, outcome) in report.outcomes.iter().enumerate() {
            self.out.push((self.fleet, indices[j], *outcome));
        }
        Ok(false)
    }
}

/// Runs an explicit index set of one fleet, in the given order — the
/// fabric worker's execution primitive (a leased range is such a set).
struct IndicesRun<'a> {
    indices: &'a [usize],
    workers: usize,
}

impl FleetVisitor for IndicesRun<'_> {
    type Out = Result<Vec<RunOutcome>, PoolError>;

    fn visit<D, W, F>(self, count: usize, task: F) -> Self::Out
    where
        D: Checkpointable,
        W: IntoIterator<Item = oqsc_lang::Sym>,
        W::IntoIter: Send,
        F: Fn(usize) -> (D, W) + Sync,
    {
        if let Some(&bad) = self.indices.iter().find(|&&i| i >= count) {
            return Err(PoolError::Protocol(format!(
                "instance index {bad} out of range for a fleet of {count}"
            )));
        }
        let runner = BatchRunner::new(self.workers.max(1));
        Ok(runner
            .run(self.indices.len(), SessionSchedule::Uninterrupted, |j| {
                task(self.indices[j])
            })
            .outcomes)
    }
}

/// Runs `indices` of `spec`'s fleet `fleet` across `workers` threads and
/// returns their outcomes in `indices` order. Unknown fleets and
/// out-of-range indices are protocol errors — the fabric worker calls
/// this with coordinator-granted ranges, and a bad grant must surface,
/// not panic.
pub fn fleet_outcomes(
    spec: SweepSpec,
    fleet: &str,
    indices: &[usize],
    workers: usize,
) -> Result<Vec<RunOutcome>, PoolError> {
    visit_fleet(spec, fleet, IndicesRun { indices, workers }).unwrap_or_else(|| {
        Err(PoolError::Protocol(format!(
            "sweep {:?} has no fleet {fleet:?}",
            spec.name()
        )))
    })
}

/// `(fleet, global index, outcome)` triples one worker reports.
pub type WorkerOutcomes = Vec<(&'static str, usize, RunOutcome)>;

/// Executes one worker's shard of `spec` and returns its outcomes — or
/// `None` when the token budget crashed it (the budget applies per
/// fleet; the first crashed fleet stops the worker, matching the
/// resume-from-store contract). This is the whole of worker mode; the
/// binary just prints the result with [`emit_outcomes`] and exits.
pub fn worker_outcomes(
    spec: SweepSpec,
    shard: ShardId,
    opts: &PoolRunOpts,
) -> Result<Option<WorkerOutcomes>, PoolError> {
    let mut out = Vec::new();
    for (fleet, _) in spec.fleets() {
        let run = ShardRun {
            fleet,
            shard,
            opts,
            out: &mut out,
        };
        let crashed =
            visit_fleet(spec, fleet, run).expect("spec.fleets() names only visitable fleets")?;
        if crashed {
            return Ok(None);
        }
    }
    Ok(Some(out))
}

/// Writes the worker protocol: one
/// `OUTCOME <fleet> <index> <accept> <bits> <qubits> <amplitudes>`
/// line per instance (the shared
/// [`fleet_outcome_line`](oqsc_serve::fleet_outcome_line) rendering the
/// fabric also speaks). [`RunOutcome`] is all integers, so the text
/// round trip is exact — merged cross-process reports are `==` to
/// in-process ones.
pub fn emit_outcomes(
    out: &mut impl std::io::Write,
    outcomes: &[(&'static str, usize, RunOutcome)],
) -> std::io::Result<()> {
    for (fleet, idx, o) in outcomes {
        writeln!(
            out,
            "{}",
            oqsc_serve::fleet_outcome_line(fleet, *idx as u64, o)
        )?;
    }
    Ok(())
}

fn parse_outcome_line(line: &str) -> Result<(String, usize, RunOutcome), PoolError> {
    let (fleet, idx, outcome) =
        oqsc_serve::parse_fleet_outcome_line(line).map_err(PoolError::Protocol)?;
    Ok((fleet, idx as usize, outcome))
}

/// An incrementally-merged sweep result: one slot per instance of every
/// fleet in `spec`, filled from `(fleet, index, outcome)` triples as
/// they arrive. This is the **single merge definition** behind both
/// batch merging ([`rows_from_outcomes`], the process pool) and the
/// fabric coordinator, which feeds it one `OUTCOME` line at a time and
/// asks it when ranges — and the whole sweep — are complete.
pub struct OutcomeLedger {
    spec: SweepSpec,
    fleets: Vec<(&'static str, usize)>,
    slots: Vec<Vec<Option<RunOutcome>>>,
    remaining: usize,
}

impl OutcomeLedger {
    /// An empty ledger covering every instance of every fleet of `spec`.
    pub fn new(spec: SweepSpec) -> Self {
        let fleets = spec.fleets();
        let slots: Vec<Vec<Option<RunOutcome>>> =
            fleets.iter().map(|&(_, count)| vec![None; count]).collect();
        let remaining = fleets.iter().map(|&(_, count)| count).sum();
        OutcomeLedger {
            spec,
            fleets,
            slots,
            remaining,
        }
    }

    /// The position of `fleet` in [`SweepSpec::fleets`] order.
    pub fn fleet_index(&self, fleet: &str) -> Option<usize> {
        self.fleets.iter().position(|&(name, _)| name == fleet)
    }

    fn slot_mut(&mut self, fleet: &str, idx: usize) -> Result<&mut Option<RunOutcome>, PoolError> {
        let f = self
            .fleet_index(fleet)
            .ok_or_else(|| PoolError::Protocol(format!("unknown fleet {fleet:?}")))?;
        self.slots[f]
            .get_mut(idx)
            .ok_or_else(|| PoolError::Protocol(format!("fleet {fleet:?} index {idx} out of range")))
    }

    /// Records an outcome that must be the *first* report of its
    /// instance — the process-pool contract, where shards partition the
    /// index space and any duplicate is a protocol violation.
    pub fn insert_new(
        &mut self,
        fleet: &str,
        idx: usize,
        outcome: RunOutcome,
    ) -> Result<(), PoolError> {
        let slot = self.slot_mut(fleet, idx)?;
        if slot.replace(outcome).is_some() {
            return Err(PoolError::Protocol(format!(
                "fleet {fleet:?} index {idx} reported twice"
            )));
        }
        self.remaining -= 1;
        Ok(())
    }

    /// Records an outcome idempotently — the fabric contract, where a
    /// re-leased range is legitimately re-executed. Every instance is a
    /// pure function of its index, so a duplicate report must be
    /// *identical*; returns `Ok(true)` for a fresh outcome, `Ok(false)`
    /// for an identical duplicate, and a protocol error for a
    /// conflicting one (a worker computing the wrong sweep).
    pub fn merge(
        &mut self,
        fleet: &str,
        idx: usize,
        outcome: RunOutcome,
    ) -> Result<bool, PoolError> {
        let slot = self.slot_mut(fleet, idx)?;
        match slot {
            Some(existing) if *existing == outcome => Ok(false),
            Some(existing) => Err(PoolError::Protocol(format!(
                "fleet {fleet:?} index {idx} re-reported with a conflicting outcome \
                 ({existing:?} vs {outcome:?})"
            ))),
            None => {
                *slot = Some(outcome);
                self.remaining -= 1;
                Ok(true)
            }
        }
    }

    /// Whether every instance of `start..end` in fleet `fleet_idx` (by
    /// [`SweepSpec::fleets`] position) has an outcome. Out-of-range
    /// ranges are simply not complete.
    pub fn range_complete(&self, fleet_idx: usize, start: usize, end: usize) -> bool {
        self.slots
            .get(fleet_idx)
            .and_then(|slots| slots.get(start..end))
            .is_some_and(|range| range.iter().all(Option::is_some))
    }

    /// Instances still missing an outcome, across all fleets.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Whether the whole sweep has been reported.
    pub fn is_complete(&self) -> bool {
        self.remaining == 0
    }

    /// Folds the filled slots into table rows; errors if any fleet still
    /// has missing instances.
    pub fn into_rows(self) -> Result<SweepRows, PoolError> {
        let mut reports = Vec::with_capacity(self.fleets.len());
        for (&(name, _), fleet_slots) in self.fleets.iter().zip(self.slots) {
            let outcomes: Option<Vec<RunOutcome>> = fleet_slots.into_iter().collect();
            let outcomes = outcomes.ok_or_else(|| {
                PoolError::Protocol(format!("fleet {name:?} is missing instance outcomes"))
            })?;
            reports.push(BatchReport::from_outcomes(outcomes));
        }
        Ok(rows_from_reports(self.spec, &reports))
    }
}

/// Merges `(fleet, index, outcome)` triples — from any number of shards
/// — into index-ordered per-fleet [`BatchReport`]s and folds them into
/// table rows. Errors if the triples do not cover every instance of
/// every fleet exactly once.
pub fn rows_from_outcomes(
    spec: SweepSpec,
    outcomes: impl IntoIterator<Item = (String, usize, RunOutcome)>,
) -> Result<SweepRows, PoolError> {
    let mut ledger = OutcomeLedger::new(spec);
    for (fleet, idx, outcome) in outcomes {
        ledger.insert_new(&fleet, idx, outcome)?;
    }
    ledger.into_rows()
}

/// Shards a sweep over OS worker processes (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessPool {
    processes: usize,
}

impl ProcessPool {
    /// A pool of `processes` worker processes (clamped to ≥ 1).
    pub fn new(processes: usize) -> Self {
        ProcessPool {
            processes: processes.max(1),
        }
    }

    /// Configured process count.
    pub fn processes(&self) -> usize {
        self.processes
    }

    /// Runs `spec` sharded over the pool: spawns `exe` (the
    /// `experiments` binary — usually `std::env::current_exe()`) in
    /// worker mode once per shard, all concurrently, and merges their
    /// `OUTCOME` streams into table rows identical to the in-process
    /// sweep's.
    pub fn run(
        &self,
        exe: &Path,
        spec: SweepSpec,
        opts: &PoolRunOpts,
    ) -> Result<SweepRows, PoolError> {
        let mut children = Vec::with_capacity(self.processes);
        for shard in 0..self.processes {
            let mut cmd = Command::new(exe);
            cmd.arg("--worker")
                .arg("--sweep")
                .arg(spec.name())
                .arg("--k-max")
                .arg(spec.k_max().to_string())
                .arg("--shard")
                .arg(shard.to_string())
                .arg("--of")
                .arg(self.processes.to_string())
                .arg("--checkpoint-every")
                .arg(opts.checkpoint_every.max(1).to_string())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped());
            if let Some(trials) = spec.trials() {
                cmd.arg("--trials").arg(trials.to_string());
            }
            if opts.workers > 1 {
                cmd.arg("--workers").arg(opts.workers.to_string());
            }
            if let Some(prefix) = &opts.store_prefix {
                cmd.arg("--store").arg(prefix);
            }
            if opts.resume {
                cmd.arg("--resume");
            }
            if let Some(t) = opts.crash_after_tokens {
                cmd.arg("--crash-after-tokens").arg(t.to_string());
            }
            if opts.legacy_v2 {
                cmd.arg("--store-format")
                    .arg(oqsc_machine::STORE_VERSION_V2.to_string());
            }
            match cmd.spawn() {
                Ok(child) => children.push((shard, child)),
                Err(e) => {
                    // Never leave live writers behind: kill and reap the
                    // shards already launched before reporting.
                    for (_, mut child) in children {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    return Err(e.into());
                }
            }
        }
        // Reap *every* worker before judging any of them: returning
        // early would leave live workers appending to their shard
        // stores, and a subsequent resume (which breaks what it assumes
        // are orphaned locks) would double-write those logs.
        let outputs: Vec<(usize, std::io::Result<std::process::Output>)> = children
            .into_iter()
            .map(|(shard, child)| (shard, child.wait_with_output()))
            .collect();
        let mut merged = Vec::new();
        let mut crashed_shard = None;
        let mut first_error = None;
        for (shard, output) in outputs {
            let output = match output {
                Ok(output) => output,
                Err(e) => {
                    first_error.get_or_insert(PoolError::Io(e));
                    continue;
                }
            };
            match output.status.code() {
                Some(0) => {
                    for line in String::from_utf8_lossy(&output.stdout).lines() {
                        if line.trim().is_empty() {
                            continue;
                        }
                        match parse_outcome_line(line) {
                            Ok(triple) => merged.push(triple),
                            Err(e) => {
                                first_error.get_or_insert(e);
                                break;
                            }
                        }
                    }
                }
                Some(WORKER_CRASH_EXIT) => {
                    crashed_shard = Some((shard, stderr_tail(&output.stderr)));
                }
                code => {
                    // A real failure (panic, store error, signal): the
                    // stderr tail carries the child's last words.
                    first_error.get_or_insert(PoolError::WorkerFailed {
                        shard,
                        code,
                        stderr: stderr_tail(&output.stderr),
                    });
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        if let Some((shard, stderr)) = crashed_shard {
            return Err(PoolError::WorkerCrashed { shard, stderr });
        }
        rows_from_outcomes(spec, merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_lines_round_trip() {
        let outcomes = vec![
            (
                "e6",
                3usize,
                RunOutcome {
                    accept: true,
                    classical_bits: 123,
                    peak_qubits: 7,
                    peak_amplitudes: 130,
                },
            ),
            ("e6", 0, RunOutcome::default()),
        ];
        let mut wire = Vec::new();
        emit_outcomes(&mut wire, &outcomes).expect("writes");
        let text = String::from_utf8(wire).expect("utf8");
        let parsed: Vec<_> = text
            .lines()
            .map(|l| parse_outcome_line(l).expect("parses"))
            .collect();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "e6");
        assert_eq!(parsed[0].1, 3);
        assert_eq!(parsed[0].2, outcomes[0].2);
        assert_eq!(parsed[1].2, RunOutcome::default());
    }

    #[test]
    fn malformed_outcome_lines_are_protocol_errors() {
        for line in [
            "OUTCOM e6 0 1 2 3 4",
            "OUTCOME e6 0 2 2 3 4", // accept flag must be 0/1
            "OUTCOME e6 0 1 2 3",   // missing field
            "OUTCOME e6 0 1 2 3 4 5",
            "OUTCOME e6 x 1 2 3 4",
        ] {
            assert!(
                matches!(parse_outcome_line(line), Err(PoolError::Protocol(_))),
                "{line:?}"
            );
        }
    }

    #[test]
    fn merged_outcomes_must_cover_the_instance_space_exactly_once() {
        let spec = SweepSpec::E6 { k_max: 2 };
        let full: Vec<(String, usize, RunOutcome)> = (0..4)
            .map(|i| ("e6".to_string(), i, RunOutcome::default()))
            .collect();
        assert!(rows_from_outcomes(spec, full.clone()).is_ok());
        // A missing instance, a duplicate, an unknown fleet, and an
        // out-of-range index are each protocol violations.
        assert!(rows_from_outcomes(spec, full[..3].to_vec()).is_err());
        let mut dup = full.clone();
        dup.push(("e6".to_string(), 1, RunOutcome::default()));
        assert!(rows_from_outcomes(spec, dup).is_err());
        let mut alien = full.clone();
        alien[0].0 = "f9".to_string();
        assert!(rows_from_outcomes(spec, alien).is_err());
        let mut oob = full;
        oob[0].1 = 99;
        assert!(rows_from_outcomes(spec, oob).is_err());
    }

    #[test]
    fn stderr_tails_are_bounded_and_keep_both_ends() {
        assert_eq!(stderr_tail(b""), "");
        assert_eq!(
            stderr_tail(b"thread panicked: boom\n"),
            "thread panicked: boom"
        );
        // Oversized stderr keeps the head (where Rust prints the panic
        // message, ahead of a RUST_BACKTRACE dump) *and* the tail (where
        // final error lines land), eliding the middle.
        let mut noisy = b"thread 'main' panicked at 'boom'\n".to_vec();
        noisy.extend_from_slice(&vec![b'x'; 3 * STDERR_TAIL_BYTES]);
        noisy.extend_from_slice(b"\nerror: final line");
        let tail = stderr_tail(&noisy);
        assert!(tail.starts_with("thread 'main' panicked at 'boom'"));
        assert!(tail.contains('\u{2026}'));
        assert!(tail.ends_with("error: final line"));
        assert!(tail.len() <= STDERR_TAIL_BYTES + '\u{2026}'.len_utf8());
    }

    #[test]
    fn crash_and_failure_errors_carry_the_worker_stderr() {
        let crashed = PoolError::WorkerCrashed {
            shard: 2,
            stderr: "crashed after budget".into(),
        };
        let rendered = crashed.to_string();
        assert!(rendered.contains("shard 2"), "{rendered}");
        assert!(rendered.contains("crashed after budget"), "{rendered}");
        let failed = PoolError::WorkerFailed {
            shard: 1,
            code: Some(101),
            stderr: "thread 'main' panicked at 'boom'".into(),
        };
        let rendered = failed.to_string();
        assert!(rendered.contains("exit code 101"), "{rendered}");
        assert!(rendered.contains("panicked at 'boom'"), "{rendered}");
    }

    #[test]
    fn f3_and_f4_specs_describe_their_fleets() {
        let f3 = SweepSpec::F3 {
            k_max: 3,
            trials: 10,
        };
        assert_eq!(
            f3.fleets(),
            vec![("k1", 10), ("k2", 10), ("k3", 10)],
            "one fleet per k"
        );
        assert_eq!(f3.name(), "f3");
        assert_eq!(f3.trials(), Some(10));
        let f4 = SweepSpec::F4 { k: 1, trials: 7 };
        assert_eq!(
            f4.fleets(),
            vec![("b1", 7), ("b2", 7), ("b4", 7)],
            "budgets capped at m = 4 when k = 1"
        );
        assert_eq!(f4.k_max(), 1);
        assert_eq!(
            SweepSpec::from_cli("f4", 2, 9),
            Some(SweepSpec::F4 { k: 2, trials: 9 })
        );
        assert_eq!(
            SweepSpec::from_cli("e6", 2, 9),
            Some(SweepSpec::E6 { k_max: 2 })
        );
    }

    #[test]
    fn f3_and_f4_worker_shards_merge_to_the_in_process_rows() {
        for spec in [
            SweepSpec::F3 {
                k_max: 2,
                trials: 9,
            },
            SweepSpec::F4 { k: 2, trials: 8 },
        ] {
            let mut merged = Vec::new();
            for shard in 0..3 {
                let out = worker_outcomes(spec, ShardId { shard, of: 3 }, &PoolRunOpts::default())
                    .expect("runs")
                    .expect("no budget, no crash");
                merged.extend(
                    out.into_iter()
                        .map(|(fleet, idx, o)| (fleet.to_string(), idx, o)),
                );
            }
            let rows = rows_from_outcomes(spec, merged).expect("complete");
            let reference =
                spec.rows_in_process(&BatchRunner::new(2), SessionSchedule::Uninterrupted);
            assert_eq!(rows, reference, "{}", spec.name());
        }
    }

    #[test]
    fn find_store_files_matches_the_shard_naming() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("oqsc-find-stores-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let prefix = dir.join("sweep");
        for name in [
            "sweep.e6.shard0of2.cps",
            "sweep.e6.shard1of2.cps",
            "sweep.e6.shard0of2.cps.lock",
            "other.e6.shard0of1.cps",
            // A sibling run whose name merely *starts with* the prefix:
            // the `.` separator requirement must keep it out.
            "sweep2.e6.shard0of1.cps",
            "sweep.notes.txt",
        ] {
            std::fs::write(dir.join(name), b"x").expect("write");
        }
        let found = find_store_files(&prefix).expect("scan");
        let names: Vec<String> = found
            .iter()
            .map(|p| p.file_name().expect("name").to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["sweep.e6.shard0of2.cps", "sweep.e6.shard1of2.cps"]);
        // A direct path to one store file is accepted as-is.
        let one = find_store_files(&dir.join("other.e6.shard0of1.cps")).expect("scan");
        assert_eq!(one.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ledger_merge_is_idempotent_but_rejects_conflicts() {
        let spec = SweepSpec::E6 { k_max: 2 };
        let mut ledger = OutcomeLedger::new(spec);
        assert_eq!(ledger.remaining(), 4);
        assert!(!ledger.is_complete());
        let out = RunOutcome {
            accept: true,
            classical_bits: 5,
            peak_qubits: 2,
            peak_amplitudes: 4,
        };
        assert!(ledger.merge("e6", 1, out).expect("fresh"));
        // An identical re-report (a re-leased range re-executed) is fine
        // and changes nothing.
        assert!(!ledger.merge("e6", 1, out).expect("duplicate"));
        assert_eq!(ledger.remaining(), 3);
        // A *conflicting* re-report means a worker computed the wrong
        // instance — protocol error.
        let mut other = out;
        other.classical_bits += 1;
        assert!(matches!(
            ledger.merge("e6", 1, other),
            Err(PoolError::Protocol(_))
        ));
        assert!(matches!(
            ledger.merge("nope", 0, out),
            Err(PoolError::Protocol(_))
        ));
        assert!(matches!(
            ledger.merge("e6", 99, out),
            Err(PoolError::Protocol(_))
        ));
        assert!(!ledger.range_complete(0, 0, 4));
        assert!(ledger.range_complete(0, 1, 2));
        assert!(
            !ledger.range_complete(0, 2, 99),
            "out of range is not complete"
        );
        for idx in [0, 2, 3] {
            ledger
                .merge("e6", idx, RunOutcome::default())
                .expect("fresh");
        }
        assert!(ledger.is_complete());
        assert!(ledger.range_complete(0, 0, 4));
        assert!(ledger.into_rows().is_ok());
    }

    #[test]
    fn fleet_outcomes_runs_granted_ranges_and_rejects_bad_grants() {
        let spec = SweepSpec::E6 { k_max: 3 };
        // A leased range must reproduce exactly the shard runner's
        // outcomes for the same indices.
        let mut shard_out = Vec::new();
        let all = worker_outcomes(spec, ShardId { shard: 0, of: 1 }, &PoolRunOpts::default())
            .expect("runs")
            .expect("no crash");
        shard_out.extend(all);
        let indices: Vec<usize> = (2..5).collect();
        let ranged = fleet_outcomes(spec, "e6", &indices, 2).expect("runs");
        for (j, &i) in indices.iter().enumerate() {
            assert_eq!(ranged[j], shard_out[i].2, "index {i}");
        }
        assert!(matches!(
            fleet_outcomes(spec, "f9", &[0], 1),
            Err(PoolError::Protocol(_))
        ));
        assert!(matches!(
            fleet_outcomes(spec, "e6", &[10_000], 1),
            Err(PoolError::Protocol(_))
        ));
    }

    #[test]
    fn shard_indices_stride_the_instance_space() {
        assert_eq!(shard_indices(ShardId { shard: 0, of: 2 }, 5), [0, 2, 4]);
        assert_eq!(shard_indices(ShardId { shard: 1, of: 2 }, 5), [1, 3]);
        assert_eq!(shard_indices(ShardId { shard: 3, of: 4 }, 2), []);
        // A zero width is clamped rather than dividing by zero.
        assert_eq!(shard_indices(ShardId { shard: 0, of: 0 }, 3), [0, 1, 2]);
    }

    #[test]
    fn worker_outcomes_match_the_in_process_sweep() {
        // Two shards of the E6 sweep, merged, equal the one-shot rows.
        let spec = SweepSpec::E6 { k_max: 3 };
        let mut merged = Vec::new();
        for shard in 0..2 {
            let out = worker_outcomes(spec, ShardId { shard, of: 2 }, &PoolRunOpts::default())
                .expect("runs")
                .expect("no budget, no crash");
            merged.extend(
                out.into_iter()
                    .map(|(fleet, idx, o)| (fleet.to_string(), idx, o)),
            );
        }
        let rows = rows_from_outcomes(spec, merged).expect("complete");
        let reference = crate::experiments::e6_classical_rows(
            3,
            &BatchRunner::new(2),
            SessionSchedule::Uninterrupted,
        );
        match rows {
            SweepRows::E6(rows) => {
                assert_eq!(rows.len(), reference.len());
                for (a, b) in rows.iter().zip(&reference) {
                    assert_eq!(
                        (a.k, a.n, a.space_bits, a.correct),
                        (b.k, b.n, b.space_bits, b.correct)
                    );
                }
            }
            other => panic!("expected E6 rows, got {other:?}"),
        }
    }
}
