//! Table generators for every experiment in `EXPERIMENTS.md`.
//!
//! Each `eN_*`/`fN_*` function returns structured rows (so tests can
//! assert on them) and has a `print_*` companion used by the
//! `experiments` binary. Decider sweeps (E6, F3, F4, and F1's
//! separation table) run through the [`BatchRunner`] shard-per-worker
//! scheduler — the `experiments` binary's `--workers N` flag sizes the
//! fleet, and every table is a pure function of its seeds, whatever the
//! worker count. Exact-analysis sweeps (E3) still fan out over plain
//! scoped threads, one per parameter point.

use oqsc_comm::lower_bound::{
    communication_matrix, disj_fn, disj_fooling_set, one_way_deterministic_cost,
};
use oqsc_comm::{simulate_reduction, theorem_3_6_space_bound, BcwParams};
use oqsc_core::classical::Prop37Decider;
use oqsc_core::recognizer::exact_complement_accept_probability;
use oqsc_core::separation::SeparationRow;
use oqsc_fingerprint::paper_error_bound;
use oqsc_grover::bbht::random_j_detection_probability;
use oqsc_grover::{averaged_success, GroverSim};
use oqsc_lang::{encoded_len, malform, random_member, random_nonmember, string_len, Malformation};
use oqsc_machine::{BatchRunner, SessionSchedule, StreamingDecider};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// E1 — BCW communication (Theorem 3.1)
// ---------------------------------------------------------------------

/// One row of the E1 table.
#[derive(Clone, Copy, Debug)]
pub struct E1Row {
    /// log₂ of the input length.
    pub log_n: u32,
    /// Input length.
    pub n: usize,
    /// Iteration-count range `M = ⌈√n⌉`.
    pub m_rounds: usize,
    /// Qubits per message.
    pub qubits_per_message: usize,
    /// Worst-case single-run qubits.
    pub worst_case_qubits: usize,
    /// The √n·log n yardstick.
    pub sqrt_n_log_n: f64,
}

/// Analytic communication geometry for `n = 2^{log_n}`.
pub fn e1_bcw_rows(log_ns: &[u32]) -> Vec<E1Row> {
    log_ns
        .iter()
        .map(|&log_n| {
            let p = BcwParams::for_n(1usize << log_n);
            E1Row {
                log_n,
                n: p.n,
                m_rounds: p.m_rounds,
                qubits_per_message: p.qubits_per_message,
                worst_case_qubits: p.worst_case_single_run_qubits(),
                sqrt_n_log_n: p.sqrt_n_log_n(),
            }
        })
        .collect()
}

/// Prints the E1 table.
pub fn print_e1() {
    println!("E1 (Theorem 3.1) — BCW quantum protocol communication for DISJ_n");
    println!(
        "{:>6} {:>9} {:>8} {:>10} {:>12} {:>12} {:>8}",
        "log n", "n", "rounds", "qb/msg", "worst-case", "√n·log n", "< n?"
    );
    for r in e1_bcw_rows(&[2, 4, 6, 8, 10, 12, 14, 16, 18, 20]) {
        println!(
            "{:>6} {:>9} {:>8} {:>10} {:>12} {:>12.0} {:>8}",
            r.log_n,
            r.n,
            r.m_rounds,
            r.qubits_per_message,
            r.worst_case_qubits,
            r.sqrt_n_log_n,
            if r.worst_case_qubits < r.n {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!();
}

// ---------------------------------------------------------------------
// E2 — classical communication substrate (Theorem 3.2)
// ---------------------------------------------------------------------

/// One row of the E2 table.
#[derive(Clone, Copy, Debug)]
pub struct E2Row {
    /// Input length.
    pub n: usize,
    /// Exact one-way deterministic cost.
    pub one_way_cost: usize,
    /// Fooling-set size (`2^n`).
    pub fooling_size: usize,
}

/// Exact one-way costs for `n = 1..=max_n` (`max_n ≤ 10`).
pub fn e2_classical_rows(max_n: usize) -> Vec<E2Row> {
    (1..=max_n)
        .map(|n| E2Row {
            n,
            one_way_cost: one_way_deterministic_cost(&communication_matrix(n, disj_fn)),
            fooling_size: disj_fooling_set(n).len(),
        })
        .collect()
}

/// Prints the E2 table.
pub fn print_e2() {
    println!("E2 (Theorem 3.2 substrate) — exact classical one-way cost of DISJ_n");
    println!("{:>4} {:>14} {:>14}", "n", "one-way bits", "fooling size");
    for r in e2_classical_rows(10) {
        println!("{:>4} {:>14} {:>14}", r.n, r.one_way_cost, r.fooling_size);
    }
    println!();
}

// ---------------------------------------------------------------------
// E3 — the one-sided quantum recognizer (Theorem 3.4)
// ---------------------------------------------------------------------

/// One row of the E3 table.
#[derive(Clone, Debug)]
pub struct E3Row {
    /// Language parameter.
    pub k: u32,
    /// Input length.
    pub n: usize,
    /// Exact accept probability on a member (must be 0).
    pub member_accept: f64,
    /// Exact accept probability on a `t = 1` non-member (must be ≥ 1/4).
    pub nonmember_accept_t1: f64,
    /// Exact accept probability on a `t = m` non-member.
    pub nonmember_accept_full: f64,
    /// Exact accept probability on a corrupted (inconsistent) word.
    pub corrupted_accept: f64,
    /// Classical bits used.
    pub classical_bits: usize,
    /// Qubits used.
    pub qubits: usize,
}

/// Exact acceptance statistics for `k ∈ {1, 2, 3}` (exhausts all coin
/// outcomes; parallel over k).
pub fn e3_recognizer_rows() -> Vec<E3Row> {
    let ks: Vec<u32> = vec![1, 2, 3];
    let mut rows: Vec<Option<E3Row>> = vec![None; ks.len()];
    std::thread::scope(|scope| {
        for (slot, &k) in rows.iter_mut().zip(&ks) {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + u64::from(k));
                let member = random_member(k, &mut rng);
                let non1 = random_nonmember(k, 1, &mut rng);
                let nonfull = random_nonmember(k, string_len(k), &mut rng);
                let corrupted = malform(&member, Malformation::YDriftAcrossRounds, &mut rng);
                let mut rec = oqsc_core::ComplementRecognizer::new(&mut rng);
                rec.feed_all(&member.encode());
                let space = rec.space();
                *slot = Some(E3Row {
                    k,
                    n: encoded_len(k),
                    member_accept: exact_complement_accept_probability(&member.encode()),
                    nonmember_accept_t1: exact_complement_accept_probability(&non1.encode()),
                    nonmember_accept_full: exact_complement_accept_probability(&nonfull.encode()),
                    corrupted_accept: exact_complement_accept_probability(&corrupted),
                    classical_bits: space.classical_bits,
                    qubits: space.qubits,
                });
            });
        }
    });
    rows.into_iter().map(|r| r.expect("filled")).collect()
}

/// Prints the E3 table.
pub fn print_e3() {
    println!("E3 (Theorem 3.4) — exact acceptance of the one-sided recognizer of L̄_DISJ");
    println!(
        "{:>3} {:>9} | {:>10} {:>12} {:>12} {:>12} | {:>7} {:>7}",
        "k", "n", "member", "t=1", "t=m", "corrupted", "bits", "qubits"
    );
    for r in e3_recognizer_rows() {
        println!(
            "{:>3} {:>9} | {:>10.6} {:>12.6} {:>12.6} {:>12.6} | {:>7} {:>7}",
            r.k,
            r.n,
            r.member_accept,
            r.nonmember_accept_t1,
            r.nonmember_accept_full,
            r.corrupted_accept,
            r.classical_bits,
            r.qubits
        );
    }
    println!("   (guarantees: member = 0 exactly; all others ≥ 0.25)");
    println!();
}

// ---------------------------------------------------------------------
// E4 — amplification (Corollary 3.5)
// ---------------------------------------------------------------------

/// One row of the E4 table.
#[derive(Clone, Copy, Debug)]
pub struct E4Row {
    /// Number of parallel copies.
    pub reps: usize,
    /// Exact two-sided error on the worst tested non-member.
    pub nonmember_error: f64,
    /// The (3/4)^reps yardstick.
    pub three_quarters_pow: f64,
}

/// Error vs amplification width on a `t = 1`, `k = 2` instance (exact:
/// `(1 − p₁)^reps`).
pub fn e4_amplification_rows() -> Vec<E4Row> {
    let mut rng = StdRng::seed_from_u64(2000);
    let non = random_nonmember(2, 1, &mut rng);
    let p1 = exact_complement_accept_probability(&non.encode());
    [1usize, 2, 4, 6, 8, 12]
        .iter()
        .map(|&reps| E4Row {
            reps,
            nonmember_error: (1.0 - p1).powi(reps as i32),
            three_quarters_pow: 0.75f64.powi(reps as i32),
        })
        .collect()
}

/// Prints the E4 table.
pub fn print_e4() {
    println!("E4 (Corollary 3.5) — amplification to bounded error (k=2, t=1; members err 0)");
    println!(
        "{:>5} {:>16} {:>12} {:>8}",
        "reps", "nonmember err", "(3/4)^r", "≤ 1/3?"
    );
    for r in e4_amplification_rows() {
        println!(
            "{:>5} {:>16.6} {:>12.6} {:>8}",
            r.reps,
            r.nonmember_error,
            r.three_quarters_pow,
            if r.nonmember_error <= 1.0 / 3.0 {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!();
}

// ---------------------------------------------------------------------
// E5 — the Theorem 3.6 reduction
// ---------------------------------------------------------------------

/// One row of the E5 table.
#[derive(Clone, Copy, Debug)]
pub struct E5Row {
    /// Language parameter.
    pub k: u32,
    /// Messages in the induced protocol (`3·2^k − 1`).
    pub messages: usize,
    /// Largest induced message, bits (Prop 3.7 decider).
    pub max_message_bits: usize,
    /// Induced total communication, bits.
    pub total_bits: usize,
    /// Communication DISJ_{2^{2k}} requires (`c·2^{2k}`, c = 1).
    pub required_bits: usize,
    /// Space lower bound recovered by inverting Fact 2.2 (cells).
    pub recovered_space_bound: usize,
}

/// Runs the reduction on the Proposition 3.7 decider for `k ∈ 1..=k_max`.
pub fn e5_reduction_rows(k_max: u32) -> Vec<E5Row> {
    (1..=k_max)
        .map(|k| {
            let mut rng = StdRng::seed_from_u64(3000 + u64::from(k));
            let inst = random_member(k, &mut rng);
            let report = simulate_reduction(Prop37Decider::new(&mut rng), &inst);
            E5Row {
                k,
                messages: report.num_messages,
                max_message_bits: report.max_message_bits,
                total_bits: report.total_bits,
                required_bits: 1usize << (2 * k),
                recovered_space_bound: theorem_3_6_space_bound(k, 1.0, 64),
            }
        })
        .collect()
}

/// Prints the E5 table.
pub fn print_e5() {
    println!("E5 (Theorem 3.6) — machine→protocol reduction (messages = configurations of Prop-3.7 decider)");
    println!(
        "{:>3} {:>9} {:>14} {:>12} {:>14} {:>16}",
        "k", "messages", "max msg bits", "total bits", "required Ω", "space LB (cells)"
    );
    for r in e5_reduction_rows(6) {
        println!(
            "{:>3} {:>9} {:>14} {:>12} {:>14} {:>16}",
            r.k,
            r.messages,
            r.max_message_bits,
            r.total_bits,
            r.required_bits,
            r.recovered_space_bound
        );
    }
    println!("   (asymptotic rows of the recovered bound: see F1; it is vacuous at tiny k)");
    println!();
}

// ---------------------------------------------------------------------
// E6 — the classical upper bound (Proposition 3.7)
// ---------------------------------------------------------------------

/// One row of the E6 table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct E6Row {
    /// Language parameter.
    pub k: u32,
    /// Input length.
    pub n: usize,
    /// Measured peak space, bits.
    pub space_bits: usize,
    /// `n^{1/3}` yardstick.
    pub n_cbrt: f64,
    /// Verdicts correct on a member/non-member pair.
    pub correct: bool,
}

/// Instances in the E6 sweep at `k_max`: a member and a `t = 1`
/// non-member per `k`.
pub fn e6_instance_count(k_max: u32) -> usize {
    2 * k_max as usize
}

/// Builds E6 instance `i`: even indices feed `k = 1 + i/2`'s member
/// word, odd ones its non-member word, machines and words both derived
/// from the per-`k` seed alone. A pure function of `i`, so the sweep is
/// worker-count independent in-process and re-derivable inside a worker
/// *process* (the cross-process scheduler ships indices, not machines).
pub fn e6_task(i: usize) -> (Prop37Decider, std::vec::IntoIter<oqsc_lang::Sym>) {
    let k = 1 + (i / 2) as u32;
    let mut rng = StdRng::seed_from_u64(4000 + u64::from(k));
    let member = random_member(k, &mut rng);
    let non = random_nonmember(k, 1, &mut rng);
    let first = Prop37Decider::new(&mut rng);
    if i.is_multiple_of(2) {
        (first, member.encode().into_iter())
    } else {
        let second = Prop37Decider::new(&mut rng);
        (second, non.encode().into_iter())
    }
}

/// Folds an E6 sweep's [`oqsc_machine::BatchReport`] into table rows.
pub fn e6_rows_from_report(k_max: u32, report: &oqsc_machine::BatchReport) -> Vec<E6Row> {
    (1..=k_max)
        .map(|k| {
            let member_out = &report.outcomes[2 * (k as usize - 1)];
            let non_out = &report.outcomes[2 * (k as usize - 1) + 1];
            E6Row {
                k,
                n: encoded_len(k),
                space_bits: member_out.classical_bits,
                n_cbrt: (encoded_len(k) as f64).powf(1.0 / 3.0),
                correct: member_out.accept && !non_out.accept,
            }
        })
        .collect()
}

/// Measures the Proposition 3.7 decider for `k ∈ 1..=k_max`: one batch
/// of `2·k_max` decider instances (a member and a `t = 1` non-member per
/// `k`) over the session scheduler, routed through the
/// [`crate::SweepSpec`] registry. Each task rebuilds its machines from
/// the per-`k` seed alone, so the table is worker-count independent —
/// and, under [`SessionSchedule::MigrateEvery`], independent of where
/// the suspend/resume boundaries fall.
pub fn e6_classical_rows(
    k_max: u32,
    runner: &BatchRunner,
    schedule: SessionSchedule,
) -> Vec<E6Row> {
    match (crate::SweepSpec::E6 { k_max }).rows_in_process(runner, schedule) {
        crate::SweepRows::E6(rows) => rows,
        other => unreachable!("E6 spec produced {other:?}"),
    }
}

/// Prints an E6 table (any source: in-process sweep or merged
/// cross-process shards — identical rows print identical bytes).
pub fn print_e6_rows(rows: &[E6Row]) {
    println!("E6 (Proposition 3.7) — classical Θ(n^(1/3)) decider");
    println!(
        "{:>3} {:>10} {:>12} {:>10} {:>9}",
        "k", "n", "space bits", "n^(1/3)", "correct"
    );
    for r in rows {
        println!(
            "{:>3} {:>10} {:>12} {:>10.1} {:>9}",
            r.k, r.n, r.space_bits, r.n_cbrt, r.correct
        );
    }
    println!();
}

/// Prints the E6 table.
pub fn print_e6(runner: &BatchRunner, schedule: SessionSchedule) {
    print_e6_rows(&e6_classical_rows(7, runner, schedule));
}

// ---------------------------------------------------------------------
// F1 — the separation plot
// ---------------------------------------------------------------------

/// Measures the separation series (quantum metering-only above k = 5).
pub fn f1_separation_rows(k_max: u32) -> Vec<SeparationRow> {
    f1_separation_rows_scheduled(
        k_max,
        &BatchRunner::available(),
        SessionSchedule::Uninterrupted,
    )
}

/// [`f1_separation_rows`] under an explicit runner and
/// [`SessionSchedule`], routed through the [`crate::SweepSpec`]
/// registry: both machine fleets run as sessions; the migrating schedule
/// suspends, serializes and migrates every decider (quantum register
/// snapshots included) at each segment boundary and produces the
/// identical table.
pub fn f1_separation_rows_scheduled(
    k_max: u32,
    runner: &BatchRunner,
    schedule: SessionSchedule,
) -> Vec<SeparationRow> {
    match (crate::SweepSpec::F1 { k_max }).rows_in_process(runner, schedule) {
        crate::SweepRows::F1(rows) => rows,
        other => unreachable!("F1 spec produced {other:?}"),
    }
}

/// The F1 table's per-row seeds, derived from the experiment's base
/// seed alone — shared by the in-process sweep and every worker process
/// of a cross-process run, so both re-derive identical instances.
pub fn f1_seeds(k_max: u32) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(5000);
    (1..=k_max).map(|_| rng.gen()).collect()
}

/// Prints an F1 table (any source: in-process sweep or merged
/// cross-process shards — identical rows print identical bytes).
pub fn print_f1_rows(rows: &[SeparationRow]) {
    println!("F1 — the separation: space to recognize L_DISJ online, vs input length");
    println!(
        "{:>3} {:>8} {:>11} | {:>14} {:>7} | {:>15} {:>12}",
        "k", "m", "n", "quantum bits", "qubits", "classical bits", "LB (cells)"
    );
    for r in rows {
        println!(
            "{:>3} {:>8} {:>11} | {:>14} {:>7} | {:>15} {:>12}",
            r.k,
            r.m,
            r.n,
            r.quantum.classical_bits,
            r.quantum.qubits,
            r.classical_upper_bits,
            r.classical_lower_cells
        );
    }
    println!("   quantum = Θ(log n); classical = Θ(n^(1/3)) both measured and forced (LB)");
    println!();
}

/// Prints the F1 series.
pub fn print_f1(runner: &BatchRunner, schedule: SessionSchedule) {
    print_f1_rows(&f1_separation_rows_scheduled(8, runner, schedule));
}

// ---------------------------------------------------------------------
// F2 — BBHT averaged success
// ---------------------------------------------------------------------

/// One row of the F2 series.
#[derive(Clone, Copy, Debug)]
pub struct F2Row {
    /// Number of marked items.
    pub t: usize,
    /// Closed-form averaged success.
    pub analytic: f64,
    /// Exact simulated detection probability.
    pub simulated: f64,
}

/// Sweeps `t` over `N = 4^k` items with `M = 2^k` rounds.
pub fn f2_bbht_rows(k: u32) -> Vec<F2Row> {
    let n = 1usize << (2 * k);
    let m = 1usize << k;
    let ts: Vec<usize> = (1..n)
        .filter(|t| t.is_power_of_two() || *t == n - 1)
        .collect();
    ts.iter()
        .map(|&t| {
            let mut marked = vec![false; n];
            let mut rng = StdRng::seed_from_u64(6000 + t as u64);
            let mut placed = 0;
            while placed < t {
                let p = rng.gen_range(0..n);
                if !marked[p] {
                    marked[p] = true;
                    placed += 1;
                }
            }
            let sim = GroverSim::new(marked);
            F2Row {
                t,
                analytic: averaged_success(m, t, n),
                simulated: random_j_detection_probability(&sim, m),
            }
        })
        .collect()
}

/// Prints the F2 series.
pub fn print_f2() {
    let k = 4;
    println!(
        "F2 — BBHT averaged detection, N = {} (paper bound ≥ 1/4)",
        1 << (2 * k)
    );
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "t", "analytic", "simulated", "≥ 1/4?"
    );
    for r in f2_bbht_rows(k) {
        println!(
            "{:>6} {:>12.6} {:>12.6} {:>8}",
            r.t,
            r.analytic,
            r.simulated,
            if r.simulated >= 0.25 - 1e-9 {
                "yes"
            } else {
                "NO"
            }
        );
    }
    println!();
}

// ---------------------------------------------------------------------
// F3 — fingerprint error
// ---------------------------------------------------------------------

/// One row of the F3 series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct F3Row {
    /// Language parameter.
    pub k: u32,
    /// Empirical A2 false-accept rate on corrupted words.
    pub empirical: f64,
    /// The paper's per-test bound `2^{-2k}` scaled by 2 tests touched.
    pub bound: f64,
}

/// The published F3 table's largest language parameter.
pub const F3_DEFAULT_K_MAX: u32 = 3;

/// The published F3 table's Monte-Carlo fleet size per `k`.
pub const F3_DEFAULT_TRIALS: usize = 4000;

/// Folds F3's per-`k` fleet [`oqsc_machine::BatchReport`]s (fleet `i` =
/// parameter `k = i + 1`) into table rows — the single row-merge
/// definition shared by the in-process sweep and the cross-process
/// scheduler, so both print identical bytes.
pub fn f3_rows_from_reports(k_max: u32, reports: &[oqsc_machine::BatchReport]) -> Vec<F3Row> {
    (1..=k_max)
        .zip(reports)
        .map(|(k, report)| F3Row {
            k,
            empirical: report.accept_rate(),
            bound: 2.0 * paper_error_bound(k),
        })
        .collect()
}

/// Monte-Carlo A2 false-accept rates for `k ∈ 1..=k_max`: one batched
/// fleet of `trials` checker instances per `k`, each trial built by the
/// pure [`oqsc_core::f3_fingerprint_task`] from `(k, trial)` alone —
/// routed through the [`crate::SweepSpec`] registry like every sweep.
pub fn f3_fingerprint_rows(
    k_max: u32,
    trials: usize,
    runner: &BatchRunner,
    schedule: SessionSchedule,
) -> Vec<F3Row> {
    match (crate::SweepSpec::F3 { k_max, trials }).rows_in_process(runner, schedule) {
        crate::SweepRows::F3(rows) => rows,
        other => unreachable!("F3 spec produced {other:?}"),
    }
}

/// Prints an F3 table (any source: in-process sweep or merged
/// cross-process shards — identical rows print identical bytes).
pub fn print_f3_rows(rows: &[F3Row]) {
    println!("F3 — A2 fingerprint false-accept rate on corrupted words (one-sided soundness)");
    println!("{:>3} {:>12} {:>16}", "k", "empirical", "2·(m−1)/2^4k");
    for r in rows {
        println!("{:>3} {:>12.6} {:>16.6}", r.k, r.empirical, r.bound);
    }
    println!();
}

/// Prints the F3 series.
pub fn print_f3(runner: &BatchRunner, schedule: SessionSchedule) {
    print_f3_rows(&f3_fingerprint_rows(
        F3_DEFAULT_K_MAX,
        F3_DEFAULT_TRIALS,
        runner,
        schedule,
    ));
}

// ---------------------------------------------------------------------
// F4 — sketch failure below √m
// ---------------------------------------------------------------------

/// One row of the F4 series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct F4Row {
    /// Sketch budget (stored positions).
    pub budget: usize,
    /// Measured space, bits.
    pub space_bits: usize,
    /// Miss rate on `t = 1` non-members.
    pub miss_rate: f64,
    /// Analytic expectation `1 − budget/m` (positions are sampled without
    /// replacement, so a planted `t = 1` intersection is caught iff its
    /// coordinate is among the `budget` sampled ones).
    pub expected_miss: f64,
}

/// The published F4 table's language parameter.
pub const F4_DEFAULT_K: u32 = 4;

/// The published F4 table's Monte-Carlo fleet size per budget.
pub const F4_DEFAULT_TRIALS: usize = 400;

/// The sketch budgets F4 sweeps at `k`: the powers of two up to the
/// string length `m`. One decider fleet per budget — shared by the
/// in-process sweep and the cross-process shard derivation.
pub fn f4_budgets(k: u32) -> Vec<usize> {
    let m = string_len(k);
    [1usize, 2, 4, 8, 16, 32, 64, 128, 256]
        .into_iter()
        .filter(|&b| b <= m)
        .collect()
}

/// Folds F4's per-budget fleet [`oqsc_machine::BatchReport`]s (fleet `i`
/// = `f4_budgets(k)[i]`) into table rows — the single row-merge
/// definition shared by the in-process sweep and the cross-process
/// scheduler.
pub fn f4_rows_from_reports(k: u32, reports: &[oqsc_machine::BatchReport]) -> Vec<F4Row> {
    let m = string_len(k);
    f4_budgets(k)
        .into_iter()
        .zip(reports)
        .map(|(budget, report)| F4Row {
            budget,
            space_bits: report.peak_classical_bits,
            miss_rate: report.accept_rate(),
            expected_miss: 1.0 - budget as f64 / m as f64,
        })
        .collect()
}

/// Sweeps sketch budgets at `k`: a batched fleet of `trials` sketch
/// deciders per budget, each trial built by the pure
/// [`oqsc_core::f4_sketch_task`] from `(budget, trial)` alone — routed
/// through the [`crate::SweepSpec`] registry like every sweep.
pub fn f4_sketch_rows(
    k: u32,
    trials: usize,
    runner: &BatchRunner,
    schedule: SessionSchedule,
) -> Vec<F4Row> {
    match (crate::SweepSpec::F4 { k, trials }).rows_in_process(runner, schedule) {
        crate::SweepRows::F4 { rows, .. } => rows,
        other => unreachable!("F4 spec produced {other:?}"),
    }
}

/// Prints an F4 table at parameter `k` (any source: in-process sweep or
/// merged cross-process shards).
pub fn print_f4_rows(k: u32, rows: &[F4Row]) {
    println!(
        "F4 — classical sketches below √m fail (k = {k}, m = {}, planted t = 1)",
        string_len(k)
    );
    println!(
        "{:>7} {:>11} {:>11} {:>14}",
        "budget", "space bits", "miss rate", "analytic miss"
    );
    for r in rows {
        println!(
            "{:>7} {:>11} {:>11.3} {:>14.3}",
            r.budget, r.space_bits, r.miss_rate, r.expected_miss
        );
    }
    println!(
        "   (reliability requires budget ~ m = Θ(√m)² — far above the quantum machine's O(log m))"
    );
    println!();
}

/// Prints the F4 series.
pub fn print_f4(runner: &BatchRunner, schedule: SessionSchedule) {
    print_f4_rows(
        F4_DEFAULT_K,
        &f4_sketch_rows(F4_DEFAULT_K, F4_DEFAULT_TRIALS, runner, schedule),
    );
}

// ---------------------------------------------------------------------
// AB — DESIGN.md §5 ablations
// ---------------------------------------------------------------------

/// One row of the backend ablation (structured simulation vs emitted
/// strict circuit).
#[derive(Clone, Copy, Debug)]
pub struct Ab1Row {
    /// Pinned iteration count.
    pub j: usize,
    /// Triples on the Definition 2.3 output tape.
    pub gate_triples: usize,
    /// Triples after peephole optimization.
    pub optimized_triples: usize,
    /// |emitted − streamed| detection probability (must be ≈ 0).
    pub detection_gap: f64,
}

/// Backend ablation at `k = 1` over all `j`.
pub fn ab1_backend_rows() -> Vec<Ab1Row> {
    let mut rng = StdRng::seed_from_u64(9100);
    let inst = random_nonmember(1, 2, &mut rng);
    (0..inst.rounds())
        .map(|j| {
            let run = oqsc_core::run_definition_2_3(&inst, j);
            let mut a3 = oqsc_core::GroverStreamer::with_j_seed(j as u64, 0);
            a3.feed_all(&inst.encode());
            Ab1Row {
                j,
                gate_triples: run.gate_triples,
                optimized_triples: run.optimized_triples,
                detection_gap: (run.detection_probability - a3.detection_probability()).abs(),
            }
        })
        .collect()
}

/// One row of the multi-point fingerprint ablation.
#[derive(Clone, Copy, Debug)]
pub struct Ab2Row {
    /// Evaluation points.
    pub points: usize,
    /// Space in bits.
    pub space_bits: u32,
    /// Analytic error bound `((m−1)/p)^r` at `k = 1`, `m = 4`.
    pub error_bound: f64,
}

/// Multi-point fingerprint space/error trade-off.
pub fn ab2_multipoint_rows() -> Vec<Ab2Row> {
    let mut rng = StdRng::seed_from_u64(9200);
    let m = string_len(1);
    [1usize, 2, 3, 4]
        .iter()
        .map(|&r| {
            let fp = oqsc_fingerprint::MultiPointFingerprint::for_k(1, r, &mut rng);
            Ab2Row {
                points: r,
                space_bits: fp.space_bits(),
                error_bound: fp.error_bound(m),
            }
        })
        .collect()
}

/// One row of the known-`t` ablation.
#[derive(Clone, Copy, Debug)]
pub struct Ab3Row {
    /// Planted intersections.
    pub t: usize,
    /// Random-`j` detection (what the paper's A3 achieves).
    pub random_j: f64,
    /// Known-`t` optimal-`j` detection.
    pub known_t: f64,
}

/// Random-`j` vs known-`t` detection at `k = 2`.
pub fn ab3_known_t_rows() -> Vec<Ab3Row> {
    let mut rng = StdRng::seed_from_u64(9300);
    [1usize, 2, 4, 8]
        .iter()
        .map(|&t| {
            let inst = random_nonmember(2, t, &mut rng);
            Ab3Row {
                t,
                random_j: oqsc_core::a3_exact_detection_probability(&inst),
                known_t: oqsc_core::a3::a3_known_t_detection_probability(&inst),
            }
        })
        .collect()
}

/// Prints the three DESIGN.md §5 ablation tables.
pub fn print_ablations() {
    println!("AB1 — A3 backend ablation (k=1): emitted strict circuit vs structured streamer");
    println!(
        "{:>3} {:>10} {:>12} {:>14}",
        "j", "triples", "optimized", "detect gap"
    );
    for r in ab1_backend_rows() {
        println!(
            "{:>3} {:>10} {:>12} {:>14.2e}",
            r.j, r.gate_triples, r.optimized_triples, r.detection_gap
        );
    }
    println!();
    println!("AB2 — multi-point fingerprints (k=1): space vs error");
    println!("{:>7} {:>11} {:>14}", "points", "space bits", "error bound");
    for r in ab2_multipoint_rows() {
        println!(
            "{:>7} {:>11} {:>14.2e}",
            r.points, r.space_bits, r.error_bound
        );
    }
    println!();
    println!("AB3 — random-j (unknown t, the paper) vs optimal-j (known t) detection, k=2");
    println!("{:>4} {:>12} {:>12}", "t", "random j", "known t");
    for r in ab3_known_t_rows() {
        println!("{:>4} {:>12.6} {:>12.6}", r.t, r.random_j, r.known_t);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ab1_backends_agree() {
        for r in ab1_backend_rows() {
            assert!(r.detection_gap < 1e-9, "j={}", r.j);
            assert!(r.optimized_triples <= r.gate_triples);
        }
    }

    #[test]
    fn ab2_error_shrinks_space_grows() {
        let rows = ab2_multipoint_rows();
        for w in rows.windows(2) {
            assert!(w[1].space_bits > w[0].space_bits);
            assert!(w[1].error_bound < w[0].error_bound);
        }
    }

    #[test]
    fn ab3_known_t_wins() {
        for r in ab3_known_t_rows() {
            assert!(r.known_t >= r.random_j - 1e-9, "t={}", r.t);
            assert!(r.random_j >= 0.25 - 1e-9);
        }
    }

    #[test]
    fn e1_rows_shape() {
        let rows = e1_bcw_rows(&[4, 10, 20]);
        assert_eq!(rows.len(), 3);
        assert!(rows[2].worst_case_qubits < rows[2].n);
        assert!(rows[0].worst_case_qubits >= rows[0].n);
    }

    #[test]
    fn e2_rows_are_linear() {
        for r in e2_classical_rows(6) {
            assert_eq!(r.one_way_cost, r.n);
            assert_eq!(r.fooling_size, 1 << r.n);
        }
    }

    #[test]
    fn e3_rows_respect_guarantees() {
        for r in e3_recognizer_rows() {
            assert!(r.member_accept < 1e-12);
            assert!(r.nonmember_accept_t1 >= 0.25 - 1e-9);
            assert!(r.nonmember_accept_full >= 0.25 - 1e-9);
            assert!(r.corrupted_accept >= 0.25 - 1e-9);
            assert!(r.qubits == 2 * r.k as usize + 2);
        }
    }

    #[test]
    fn e4_error_decays_geometrically() {
        let rows = e4_amplification_rows();
        assert!(rows
            .iter()
            .all(|r| r.nonmember_error <= r.three_quarters_pow + 1e-12));
        assert!(rows.last().expect("rows").nonmember_error < 0.05);
    }

    #[test]
    fn e5_rows_count_messages() {
        for r in e5_reduction_rows(3) {
            assert_eq!(r.messages, 3 * (1usize << r.k) - 1);
            assert!(r.total_bits > 0);
        }
    }

    #[test]
    fn e6_rows_correct_and_cbrt_shaped() {
        for r in e6_classical_rows(5, &BatchRunner::available(), SessionSchedule::Uninterrupted) {
            assert!(r.correct);
            assert!((r.space_bits as f64) < 40.0 * r.n_cbrt + 200.0);
        }
    }

    #[test]
    fn batched_tables_are_worker_count_independent() {
        let serial = BatchRunner::serial();
        let wide = BatchRunner::new(8);
        let plain = SessionSchedule::Uninterrupted;
        let e6_a = e6_classical_rows(4, &serial, plain);
        let e6_b = e6_classical_rows(4, &wide, plain);
        for (a, b) in e6_a.iter().zip(&e6_b) {
            assert_eq!(
                (a.k, a.space_bits, a.correct),
                (b.k, b.space_bits, b.correct)
            );
        }
        let f4_a = f4_sketch_rows(2, 50, &serial, plain);
        let f4_b = f4_sketch_rows(2, 50, &wide, SessionSchedule::MigrateEvery(13));
        for (a, b) in f4_a.iter().zip(&f4_b) {
            assert_eq!(a.budget, b.budget);
            assert_eq!(a.space_bits, b.space_bits);
            assert!((a.miss_rate - b.miss_rate).abs() < 1e-12);
        }
    }

    #[test]
    fn f2_bound_holds() {
        for r in f2_bbht_rows(3) {
            assert!((r.analytic - r.simulated).abs() < 1e-9);
            assert!(r.simulated >= 0.25 - 1e-9);
        }
    }

    #[test]
    fn f3_empirical_below_bound() {
        for r in f3_fingerprint_rows(
            3,
            500,
            &BatchRunner::available(),
            SessionSchedule::Uninterrupted,
        ) {
            assert!(
                r.empirical <= r.bound + 0.05,
                "k={}: {} > {}",
                r.k,
                r.empirical,
                r.bound
            );
        }
    }

    #[test]
    fn f4_miss_rate_tracks_analytic() {
        let rows = f4_sketch_rows(
            3,
            200,
            &BatchRunner::available(),
            SessionSchedule::Uninterrupted,
        );
        for r in &rows {
            assert!(
                (r.miss_rate - r.expected_miss).abs() < 0.15,
                "budget {}",
                r.budget
            );
        }
        // Full budget is exact.
        assert!(rows.last().expect("rows").miss_rate < 0.01);
    }
}
