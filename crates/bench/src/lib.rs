//! # oqsc-bench — experiment harness
//!
//! Regenerates every quantitative claim of the paper (the experiment index
//! in `DESIGN.md` / `EXPERIMENTS.md`):
//!
//! * `cargo run --release -p oqsc-bench --bin experiments` prints all
//!   tables (E1–E6, F1–F4);
//! * `cargo bench -p oqsc-bench` times the underlying operations with
//!   Criterion, one bench target per experiment family.
//!
//! The library part holds the table-producing functions so both entry
//! points (and the integration tests) share one implementation. Decider
//! sweeps run through `oqsc_machine::BatchRunner` (size the fleet with
//! `--workers N` on the binary); `cargo bench --bench throughput`
//! measures the batch and parallel-dense paths against the serial one.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod fabric;
pub mod pool;
pub mod record;

pub use experiments::*;
pub use fabric::{
    fabric_coordinate, fabric_instance_id, fabric_work, split_fabric_instance_id, Coordinator,
    FabricConfig, FabricState, FabricWorkReport, WorkerConfig,
};
pub use pool::{
    emit_outcomes, find_store_files, fleet_outcomes, rows_from_outcomes, rows_from_reports,
    shard_indices, worker_outcomes, OutcomeLedger, PoolError, PoolRunOpts, ProcessPool, ShardId,
    SweepRows, SweepSpec, WORKER_CRASH_EXIT,
};
pub use record::{run_record, RecordOpts};
