//! DESIGN.md ablations: structured-operator simulation vs strict-circuit
//! execution, bit-mode vs block-mode streaming updates, and amplification
//! width (see also e4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oqsc_core::emit::a3_strict_circuit;
use oqsc_core::GroverStreamer;
use oqsc_lang::random_nonmember;
use oqsc_machine::StreamingDecider;
use oqsc_quantum::GroverLayout;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Structured streaming (bit-mode, O(1)/symbol) vs emitted strict circuit
/// (the Definition 2.3 formal path).
fn bench_structured_vs_strict(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let inst = random_nonmember(1, 1, &mut rng);
    let word = inst.encode();
    let mut group = c.benchmark_group("ablation_a3_backend");
    group.bench_function("structured_streamer", |b| {
        b.iter(|| {
            let mut a3 = GroverStreamer::with_j_seed(1, 0);
            a3.feed_all(&word);
            a3.detection_probability()
        });
    });
    group.bench_function("strict_circuit_emit_and_run", |b| {
        b.iter(|| {
            let circuit = a3_strict_circuit(&inst, 1);
            circuit.run_from_zero().prob_one(0)
        });
    });
    group.finish();
}

/// Bit-mode (per streamed symbol) vs block-mode (whole string at once)
/// structured operator application.
fn bench_bit_vs_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_vx_application");
    for k in [3u32, 5] {
        let layout = GroverLayout::for_k(k);
        let mut rng = StdRng::seed_from_u64(u64::from(k));
        let x: Vec<bool> = (0..layout.domain()).map(|_| rng.gen()).collect();
        group.bench_with_input(BenchmarkId::new("block", k), &x, |b, x| {
            let mut s = layout.phi();
            b.iter(|| layout.apply_vx(&mut s, x));
        });
        group.bench_with_input(BenchmarkId::new("bit", k), &x, |b, x| {
            let mut s = layout.phi();
            b.iter(|| {
                for (i, &xi) in x.iter().enumerate() {
                    layout.apply_vx_bit(&mut s, i, xi);
                }
            });
        });
    }
    group.finish();
}

/// Dense vs sparse backend running the identical A3 streaming pipeline
/// (the `QuantumBackend` seam): the sparse backend pays map overhead per
/// touched amplitude but stores only the support.
fn bench_dense_vs_sparse_backend(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut group = c.benchmark_group("ablation_a3_quantum_backend");
    for k in [2u32, 4] {
        let inst = random_nonmember(k, 2, &mut rng);
        let word = inst.encode();
        group.bench_with_input(BenchmarkId::new("dense", k), &word, |b, word| {
            b.iter(|| {
                let mut a3 = GroverStreamer::<oqsc_quantum::StateVector>::with_j_seed_in(1, 0);
                a3.feed_all(word);
                a3.detection_probability()
            });
        });
        group.bench_with_input(BenchmarkId::new("sparse", k), &word, |b, word| {
            b.iter(|| {
                let mut a3 = GroverStreamer::<oqsc_quantum::SparseState>::with_j_seed_in(1, 0);
                a3.feed_all(word);
                a3.detection_probability()
            });
        });
    }
    group.finish();
}

/// SIMD dispatch on vs forced-scalar for the dense kernel hot loops (the
/// Hadamard sweep plus the diffusion axpy), at sizes spanning the
/// `PARALLEL_THRESHOLD` seam. Criterion bench binaries run their targets
/// sequentially, so toggling the process-global `simd::force` between the
/// two arms is safe here.
fn bench_simd_vs_scalar(c: &mut Criterion) {
    use oqsc_quantum::{simd, SimdLevel, StateVector};
    let mut group = c.benchmark_group("ablation_simd_dense");
    for n in [14usize, 16, 18] {
        let qs: Vec<usize> = (0..n).collect();
        for (arm, level) in [("simd", None), ("scalar", Some(SimdLevel::Scalar))] {
            group.bench_with_input(BenchmarkId::new(arm, n), &qs, |b, qs| {
                simd::force(level);
                let mirror = StateVector::uniform(qs.len());
                let mut s = StateVector::uniform(qs.len());
                b.iter(|| {
                    s.apply_hadamard_all(qs);
                    s.reflect_about(&mirror);
                    s.prob_one(0)
                });
                simd::force(None);
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_structured_vs_strict,
    bench_bit_vs_block,
    bench_dense_vs_sparse_backend,
    bench_simd_vs_scalar
);
criterion_main!(benches);
