//! Session multiplexing throughput: tokens per second through the
//! `oqsc-serve` engine while the fleet churns through the LRU tiers
//! (DESIGN.md §12).
//!
//! Group `mux` drives the exact `pub` workload from
//! `oqsc_bench::record::mux_feed` — the same code the committed
//! `BENCH_throughput.json` mux cells time — at criterion-friendly fleet
//! sizes. Two axes:
//!
//! * `churn/N` — a fleet 16× larger than the live budget on `N` workers:
//!   every session keeps falling out of the hot tier and rehydrating
//!   from compressed warm bytes, so this times the suspend/compress/
//!   resume cycle, not just the deciders;
//! * `resident/N` — the same fleet under a budget that holds everyone
//!   live: the no-eviction upper bound the churn cells are measured
//!   against;
//! * `eviction/<policy>` — the heterogeneous churn cell from
//!   `oqsc_bench::record::eviction_feed` (every fourth session a dense
//!   Grover streamer, the rest cheap format checkers) once per eviction
//!   policy — the LRU-vs-GDSF head-to-head behind the engine's default.
//!
//! ```text
//! cargo bench -p oqsc-bench --bench mux
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oqsc_bench::record::{eviction_feed, mux_feed, mux_live_budget, MUX_WORD_LEN};
use oqsc_serve::EvictionPolicy;

const SESSIONS: usize = 1024;
const LIVE_SESSIONS: usize = 64;

/// Hot-tier churn vs fully-resident serving, one and four workers.
fn bench_mux(c: &mut Criterion) {
    let tokens = (SESSIONS * MUX_WORD_LEN) as u64;
    let churn_budget = mux_live_budget(LIVE_SESSIONS);
    let resident_budget = mux_live_budget(2 * SESSIONS);
    let mut group = c.benchmark_group("mux");
    group.sample_size(10);
    group.throughput(Throughput::Elements(tokens));

    for workers in [1usize, 4] {
        group.bench_function(BenchmarkId::new("churn", workers), |b| {
            b.iter(|| black_box(mux_feed(SESSIONS, churn_budget, workers)))
        });
        group.bench_function(BenchmarkId::new("resident", workers), |b| {
            b.iter(|| black_box(mux_feed(SESSIONS, resident_budget, workers)))
        });
    }
    for policy in EvictionPolicy::ALL {
        group.bench_function(BenchmarkId::new("eviction", policy.name()), |b| {
            b.iter(|| black_box(eviction_feed(SESSIONS, churn_budget, 4, policy)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mux);
criterion_main!(benches);
