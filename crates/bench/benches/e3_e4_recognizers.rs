//! E3/E4: the online quantum recognizer — single-copy and amplified.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oqsc_core::recognizer::{ComplementRecognizer, LdisjRecognizer};
use oqsc_lang::{encoded_len, random_member};
use oqsc_machine::run_decider;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_complement_recognizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_complement_recognizer");
    for k in 1..=4u32 {
        let mut rng = StdRng::seed_from_u64(u64::from(k));
        let word = random_member(k, &mut rng).encode();
        group.throughput(Throughput::Elements(encoded_len(k) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &word, |b, word| {
            b.iter(|| run_decider(ComplementRecognizer::new(&mut rng), word));
        });
    }
    group.finish();
}

fn bench_amplified(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_amplified_recognizer");
    let mut rng = StdRng::seed_from_u64(9);
    let word = random_member(2, &mut rng).encode();
    for reps in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(reps), &word, |b, word| {
            b.iter(|| run_decider(LdisjRecognizer::new(reps, &mut rng), word));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_complement_recognizer, bench_amplified);
criterion_main!(benches);
