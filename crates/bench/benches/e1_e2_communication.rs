//! E1/E2: communication protocols — BCW single runs vs trivial classical,
//! and exact one-way cost computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oqsc_comm::lower_bound::{communication_matrix, disj_fn, one_way_deterministic_cost};
use oqsc_comm::{bcw_single_run, trivial_disj_protocol};
use oqsc_lang::{random_member, string_len};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_bcw(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_bcw_single_run");
    for k in 1..=3u32 {
        let mut rng = StdRng::seed_from_u64(u64::from(k));
        let inst = random_member(k, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(string_len(k)),
            &inst,
            |b, inst| {
                b.iter(|| bcw_single_run(inst.x(), inst.y(), &mut rng));
            },
        );
    }
    group.finish();
}

fn bench_trivial(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_trivial_protocol");
    for k in 1..=3u32 {
        let mut rng = StdRng::seed_from_u64(u64::from(k));
        let inst = random_member(k, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(string_len(k)),
            &inst,
            |b, inst| {
                b.iter(|| trivial_disj_protocol(inst.x(), inst.y()));
            },
        );
    }
    group.finish();
}

fn bench_one_way_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_one_way_cost");
    for n in [4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let m = communication_matrix(n, disj_fn);
                one_way_deterministic_cost(&m)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bcw, bench_trivial, bench_one_way_cost);
criterion_main!(benches);
