//! Throughput: recognizer instances per second across the concurrency
//! layer's execution modes (DESIGN.md §6).
//!
//! Group `throughput` (fixed `k = 3`, 8 instances) compares the fleet
//! axis: `serial` (one dense recognizer at a time, the pre-batch
//! baseline) vs `batched/N` (the same fleet through [`BatchRunner`] with
//! `N` workers; on a multi-core box N > 1 beats serial at equal `k`).
//!
//! Group `throughput-parallel-dense` (fixed `k = 6`, 2 instances)
//! compares the backend axis at a size where it actually engages: the
//! `2k + 2 = 14`-qubit register holds `2^14` amplitudes, above
//! `PARALLEL_THRESHOLD = 2^13` — at `k = 3` (256 amplitudes) the
//! parallel backend would run serially by design, so measuring it there
//! would time the wrong code path.
//!
//! Group `throughput-record` re-times the `--bench-json` record's kernel
//! and end-to-end cells (the exact `pub` workload functions from
//! `oqsc_bench::record`) under both SIMD dispatch modes, so criterion's
//! statistics and the committed `BENCH_throughput.json` measure the same
//! code.
//!
//! ```text
//! cargo bench -p oqsc-bench --bench throughput
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oqsc_bench::record;
use oqsc_core::sweep::{complement_sweep_in, derive_seed};
use oqsc_core::ComplementRecognizer;
use oqsc_lang::Sym;
use oqsc_machine::{run_decider, BatchRunner};
use oqsc_quantum::{ParallelStateVector, SimdLevel, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BASE_SEED: u64 = 0xBA7C4;

fn instance_set(k: u32, count: usize) -> Vec<Vec<Sym>> {
    record::sweep_words(k, count)
}

/// Fleet axis: one recognizer per instance, serial vs batched shards.
fn bench_batching(c: &mut Criterion) {
    let instances = 8usize;
    let words = instance_set(3, instances);
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(instances as u64));

    group.bench_function("serial", |b| {
        b.iter(|| {
            words
                .iter()
                .enumerate()
                .filter(|(i, word)| {
                    let mut rng = StdRng::seed_from_u64(derive_seed(BASE_SEED, *i));
                    run_decider(ComplementRecognizer::<StateVector>::new_in(&mut rng), word).accept
                })
                .count()
        });
    });

    for workers in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::new("batched", workers), |b| {
            let runner = BatchRunner::new(workers);
            b.iter(|| complement_sweep_in::<StateVector>(&words, BASE_SEED, &runner).accepted);
        });
    }

    group.finish();
}

/// Backend axis, above the serial threshold: dense vs parallel-dense
/// kernels inside each recognizer (instance order itself stays serial,
/// so the two arms differ only in the gate/reduction execution).
fn bench_parallel_dense(c: &mut Criterion) {
    let instances = 2usize;
    let words = instance_set(6, instances);
    let mut group = c.benchmark_group("throughput-parallel-dense");
    group.sample_size(10);
    group.throughput(Throughput::Elements(instances as u64));

    group.bench_function("dense", |b| {
        b.iter(|| {
            complement_sweep_in::<StateVector>(&words, BASE_SEED, &BatchRunner::serial()).accepted
        });
    });

    group.bench_function("parallel-dense", |b| {
        b.iter(|| {
            complement_sweep_in::<ParallelStateVector>(&words, BASE_SEED, &BatchRunner::serial())
                .accepted
        });
    });

    group.finish();
}

/// One record cell: name, workload function, size.
type RecordCell = (&'static str, fn(usize, u32) -> u64, usize);

/// The bench-record cells under criterion: same workload functions, same
/// sizes as the full `--bench-json` run, scalar vs auto dispatch.
fn bench_record_cells(c: &mut Criterion) {
    let cells: [RecordCell; 4] = [
        ("gate_sweep_dense", record::gate_sweep_dense, 16),
        ("reflect_axpy", record::reflect_axpy, 16),
        ("reductions_dense", record::reductions_dense, 16),
        ("throughput_sweep", record::throughput_sweep, 8),
    ];
    let mut group = c.benchmark_group("throughput-record");
    group.sample_size(10);
    for (name, run, n) in cells {
        for (mode, level) in [("scalar", Some(SimdLevel::Scalar)), ("simd", None)] {
            let guard = record::ForceGuard::force(level);
            group.bench_function(BenchmarkId::new(name, mode), |b| {
                b.iter(|| black_box(run(n, 1)))
            });
            drop(guard);
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batching,
    bench_parallel_dense,
    bench_record_cells
);
criterion_main!(benches);
