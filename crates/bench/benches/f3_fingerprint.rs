//! F3: fingerprint streaming throughput and the prime-search ablation
//! (Miller–Rabin scan vs the paper's naive trial-division scan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oqsc_fingerprint::prime::{scan_prime, scan_prime_trial_division};
use oqsc_fingerprint::{fingerprint_prime, StreamingFingerprint};

fn bench_streaming_feed(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_fingerprint_feed");
    for k in [2u32, 4, 8] {
        let p = fingerprint_prime(k);
        let bits: Vec<bool> = (0..1usize << (2 * k)).map(|i| i % 3 == 0).collect();
        group.throughput(Throughput::Elements(bits.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &bits, |b, bits| {
            b.iter(|| {
                let mut f = StreamingFingerprint::new(p, 12345 % p);
                f.feed_all(bits);
                f.value()
            });
        });
    }
    group.finish();
}

fn bench_prime_search_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_prime_search");
    for k in [4u32, 8, 12] {
        let lo = (1u64 << (4 * k)) + 1;
        let hi = 1u64 << (4 * k + 1);
        group.bench_with_input(
            BenchmarkId::new("miller_rabin", k),
            &(lo, hi),
            |b, &(lo, hi)| {
                b.iter(|| scan_prime(lo, hi));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("trial_division", k),
            &(lo, hi),
            |b, &(lo, hi)| {
                b.iter(|| scan_prime_trial_division(lo, hi));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_feed, bench_prime_search_ablation);
criterion_main!(benches);
