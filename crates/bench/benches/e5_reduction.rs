//! E5: the Theorem 3.6 machine→protocol reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oqsc_comm::{simulate_reduction, theorem_3_6_space_bound};
use oqsc_core::classical::Prop37Decider;
use oqsc_lang::random_member;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_simulate_reduction");
    for k in 1..=4u32 {
        let mut rng = StdRng::seed_from_u64(u64::from(k));
        let inst = random_member(k, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(k), &inst, |b, inst| {
            b.iter(|| simulate_reduction(Prop37Decider::new(&mut rng), inst));
        });
    }
    group.finish();
}

fn bench_space_bound_inversion(c: &mut Criterion) {
    c.bench_function("e5_fact_2_2_inversion_k12", |b| {
        b.iter(|| theorem_3_6_space_bound(std::hint::black_box(12), 1.0, 64));
    });
}

criterion_group!(benches, bench_reduction, bench_space_bound_inversion);
criterion_main!(benches);
