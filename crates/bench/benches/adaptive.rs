//! Adaptive vs fixed backends on A3 workloads (DESIGN.md §7).
//!
//! Two streams at `k = 5` (a `2k + 2 = 12`-qubit register, 4096 dense
//! amplitudes), one per regime of the promotion rule:
//!
//! * **structured** — a well-formed member instance: the reachable states
//!   keep support density exactly 1/4, below the 3/8 promotion threshold,
//!   so `AdaptiveState` stays sparse for the whole run and pays
//!   support-proportional memory like `SparseState`;
//! * **densifying** — the same shape with fully random blocks: the `z`
//!   copies no longer uncompute the `h` branch, diffusion mixes the
//!   branches, and the support grows past the threshold mid-stream —
//!   `AdaptiveState` promotes and finishes on the parallel dense kernels
//!   instead of grinding a near-dense `BTreeMap`.
//!
//! Each workload runs on all four backends. The interesting comparisons:
//! `adaptive` vs `sparse` on the densifying stream (the promotion win)
//! and `adaptive` vs `dense` on the structured stream (the memory win at
//! a bounded speed cost). The verdict statistics are identical everywhere
//! by the equivalence suites; this bench measures only time.
//!
//! ```text
//! cargo bench -p oqsc-bench --bench adaptive
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use oqsc_bench::record;
use oqsc_core::GroverStreamer;
use oqsc_lang::{random_member, Sym};
use oqsc_machine::StreamingDecider;
use oqsc_quantum::{
    AdaptiveState, ParallelStateVector, QuantumBackend, SimdLevel, SparseState, StateVector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: u32 = 5;

/// A well-formed member instance: support density pinned at 1/4.
fn structured_word() -> Vec<Sym> {
    let mut rng = StdRng::seed_from_u64(0xADAB1);
    random_member(K, &mut rng).encode()
}

/// The same `1^k # (b^{2^{2k}} #)^{3·2^k}` shape with independently
/// random blocks: the `h` branch stops uncomputing and the support
/// crosses the promotion threshold during the early diffusion rounds.
/// (Shared with the `--bench-json` record's `adaptive_densify` cell.)
fn densifying_word() -> Vec<Sym> {
    record::densifying_word(K)
}

fn run_streamer<B: QuantumBackend>(word: &[Sym]) -> f64 {
    let mut a3 = GroverStreamer::<B>::with_j_seed_in(3, 0);
    a3.feed_all(word);
    a3.detection_probability()
}

fn bench_backends(c: &mut Criterion) {
    let workloads = [
        ("a3-structured", structured_word()),
        ("a3-densifying", densifying_word()),
    ];
    for (name, word) in &workloads {
        let mut group = c.benchmark_group(format!("adaptive/{name}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::from_parameter("dense"), |b| {
            b.iter(|| black_box(run_streamer::<StateVector>(word)))
        });
        group.bench_function(BenchmarkId::from_parameter("parallel"), |b| {
            b.iter(|| black_box(run_streamer::<ParallelStateVector>(word)))
        });
        group.bench_function(BenchmarkId::from_parameter("sparse"), |b| {
            b.iter(|| black_box(run_streamer::<SparseState>(word)))
        });
        group.bench_function(BenchmarkId::from_parameter("adaptive"), |b| {
            b.iter(|| black_box(run_streamer::<AdaptiveState>(word)))
        });
        group.finish();
    }
}

/// The record's `adaptive_densify` cell under criterion: the same `pub`
/// workload function as the `--bench-json` run, scalar vs auto dispatch,
/// at the full-record size (`qubits = 10`, i.e. `k = 4`).
fn bench_record_densify(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive/record-densify");
    group.sample_size(10);
    for (mode, level) in [("scalar", Some(SimdLevel::Scalar)), ("simd", None)] {
        let guard = record::ForceGuard::force(level);
        group.bench_function(BenchmarkId::from_parameter(mode), |b| {
            b.iter(|| black_box(record::adaptive_densify(10, 1)))
        });
        drop(guard);
    }
    group.finish();
}

criterion_group!(benches, bench_backends, bench_record_densify);
criterion_main!(benches);
