//! Adaptive vs fixed backends on A3 workloads (DESIGN.md §7).
//!
//! Two streams at `k = 5` (a `2k + 2 = 12`-qubit register, 4096 dense
//! amplitudes), one per regime of the promotion rule:
//!
//! * **structured** — a well-formed member instance: the reachable states
//!   keep support density exactly 1/4, below the 3/8 promotion threshold,
//!   so `AdaptiveState` stays sparse for the whole run and pays
//!   support-proportional memory like `SparseState`;
//! * **densifying** — the same shape with fully random blocks: the `z`
//!   copies no longer uncompute the `h` branch, diffusion mixes the
//!   branches, and the support grows past the threshold mid-stream —
//!   `AdaptiveState` promotes and finishes on the parallel dense kernels
//!   instead of grinding a near-dense `BTreeMap`.
//!
//! Each workload runs on all four backends. The interesting comparisons:
//! `adaptive` vs `sparse` on the densifying stream (the promotion win)
//! and `adaptive` vs `dense` on the structured stream (the memory win at
//! a bounded speed cost). The verdict statistics are identical everywhere
//! by the equivalence suites; this bench measures only time.
//!
//! ```text
//! cargo bench -p oqsc-bench --bench adaptive
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use oqsc_core::GroverStreamer;
use oqsc_lang::{random_member, Sym};
use oqsc_machine::StreamingDecider;
use oqsc_quantum::{AdaptiveState, ParallelStateVector, QuantumBackend, SparseState, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const K: u32 = 5;

/// A well-formed member instance: support density pinned at 1/4.
fn structured_word() -> Vec<Sym> {
    let mut rng = StdRng::seed_from_u64(0xADAB1);
    random_member(K, &mut rng).encode()
}

/// The same `1^k # (b^{2^{2k}} #)^{3·2^k}` shape with independently
/// random blocks: the `h` branch stops uncomputing and the support
/// crosses the promotion threshold during the early diffusion rounds.
fn densifying_word() -> Vec<Sym> {
    let mut rng = StdRng::seed_from_u64(0xADAB2);
    let m = 1usize << (2 * K);
    let blocks = 3 * (1usize << K);
    let mut word = Vec::with_capacity(K as usize + 1 + blocks * (m + 1));
    word.extend(std::iter::repeat_n(Sym::One, K as usize));
    word.push(Sym::Hash);
    for _ in 0..blocks {
        word.extend((0..m).map(|_| if rng.gen() { Sym::One } else { Sym::Zero }));
        word.push(Sym::Hash);
    }
    word
}

fn run_streamer<B: QuantumBackend>(word: &[Sym]) -> f64 {
    let mut a3 = GroverStreamer::<B>::with_j_seed_in(3, 0);
    a3.feed_all(word);
    a3.detection_probability()
}

fn bench_backends(c: &mut Criterion) {
    let workloads = [
        ("a3-structured", structured_word()),
        ("a3-densifying", densifying_word()),
    ];
    for (name, word) in &workloads {
        let mut group = c.benchmark_group(format!("adaptive/{name}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::from_parameter("dense"), |b| {
            b.iter(|| black_box(run_streamer::<StateVector>(word)))
        });
        group.bench_function(BenchmarkId::from_parameter("parallel"), |b| {
            b.iter(|| black_box(run_streamer::<ParallelStateVector>(word)))
        });
        group.bench_function(BenchmarkId::from_parameter("sparse"), |b| {
            b.iter(|| black_box(run_streamer::<SparseState>(word)))
        });
        group.bench_function(BenchmarkId::from_parameter("adaptive"), |b| {
            b.iter(|| black_box(run_streamer::<AdaptiveState>(word)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
