//! F2: Grover iterations, BBHT detection, and the closed forms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oqsc_grover::bbht::{bbht_search, random_j_detection_probability};
use oqsc_grover::{averaged_success, GroverSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn planted(n: usize, t: usize) -> GroverSim {
    let mut marked = vec![false; n];
    for i in 0..t {
        marked[(i * 37 + 5) % n] = true;
    }
    GroverSim::new(marked)
}

fn bench_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_grover_iteration");
    for width in [8usize, 12, 16] {
        let sim = planted(1 << width, 3);
        group.bench_with_input(BenchmarkId::from_parameter(width), &sim, |b, sim| {
            let mut s = oqsc_quantum::StateVector::uniform(sim.width());
            b.iter(|| sim.iterate(&mut s));
        });
    }
    group.finish();
}

fn bench_detection_probability(c: &mut Criterion) {
    let sim = planted(256, 4);
    c.bench_function("f2_random_j_detection_exact_n256", |b| {
        b.iter(|| random_j_detection_probability(&sim, 16));
    });
}

fn bench_bbht(c: &mut Criterion) {
    let sim = planted(256, 1);
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("f2_bbht_search_n256_t1", |b| {
        b.iter(|| bbht_search(&sim, &mut rng));
    });
}

fn bench_closed_form(c: &mut Criterion) {
    c.bench_function("f2_averaged_success_closed_form", |b| {
        b.iter(|| averaged_success(std::hint::black_box(1024), 7, 1 << 20));
    });
}

criterion_group!(
    benches,
    bench_iteration,
    bench_detection_probability,
    bench_bbht,
    bench_closed_form
);
criterion_main!(benches);
