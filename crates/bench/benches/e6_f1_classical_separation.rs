//! E6/F1: the classical Θ(n^{1/3}) decider and the full separation row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oqsc_core::classical::Prop37Decider;
use oqsc_core::separation::measure_separation_row;
use oqsc_lang::{encoded_len, random_member};
use oqsc_machine::run_decider;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_prop37(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_prop37_decider");
    for k in 1..=5u32 {
        let mut rng = StdRng::seed_from_u64(u64::from(k));
        let word = random_member(k, &mut rng).encode();
        group.throughput(Throughput::Elements(encoded_len(k) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &word, |b, word| {
            b.iter(|| run_decider(Prop37Decider::new(&mut rng), word));
        });
    }
    group.finish();
}

fn bench_separation_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_separation_row");
    group.sample_size(10);
    for k in [2u32, 4, 6] {
        let mut rng = StdRng::seed_from_u64(u64::from(k));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| measure_separation_row(k, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prop37, bench_separation_row);
criterion_main!(benches);
