//! F4: bounded-budget classical sketches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oqsc_core::classical::SketchDecider;
use oqsc_lang::random_nonmember;
use oqsc_machine::run_decider;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sketch(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_sketch_decider");
    let mut rng = StdRng::seed_from_u64(4);
    let word = random_nonmember(4, 1, &mut rng).encode();
    for budget in [4usize, 32, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(budget), &word, |b, word| {
            b.iter(|| run_decider(SketchDecider::new(budget, &mut rng), word));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sketch);
criterion_main!(benches);
