//! The cross-process scheduler's contract, pinned against the real
//! `experiments` binary (spawned as OS processes, exactly as a user
//! would run it):
//!
//! * 1/2/4-process runs of E6 and F1 print tables **byte-identical** to
//!   the in-process `--workers N` runs;
//! * a sweep killed mid-run (worker processes exiting the crash way)
//!   and resumed from the persisted shard stores prints the identical
//!   table;
//! * stale stores are refused without `--resume`, and orphaned lock
//!   files block a fresh run until broken.
//!
//! CI runs this suite under `--release`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const WORKER_CRASH_EXIT: i32 = 9;

fn experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("spawn experiments binary")
}

fn stdout_of(args: &[&str]) -> String {
    let out = experiments(args);
    assert!(
        out.status.success(),
        "experiments {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 table")
}

fn temp_prefix(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("oqsc-pool-{}-{name}", std::process::id()));
    p
}

fn cleanup_prefix(prefix: &Path) {
    let dir = prefix.parent().expect("temp dir");
    let stem = prefix
        .file_name()
        .expect("prefix name")
        .to_string_lossy()
        .into_owned();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().starts_with(&stem) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

#[test]
fn process_pools_print_tables_byte_identical_to_in_process_runs() {
    for (sweep, k_max) in [("e6", "4"), ("f1", "4")] {
        let reference = stdout_of(&["--sweep", sweep, "--k-max", k_max, "--workers", "2"]);
        assert!(reference.contains('|') || reference.contains("correct"));
        for processes in ["1", "2", "4"] {
            let pooled = stdout_of(&["--sweep", sweep, "--k-max", k_max, "--processes", processes]);
            assert_eq!(
                pooled, reference,
                "{sweep}: {processes}-process table differs from in-process"
            );
        }
        // Threads inside worker processes compose with process sharding
        // without touching the table.
        let threaded = stdout_of(&[
            "--sweep",
            sweep,
            "--k-max",
            k_max,
            "--processes",
            "2",
            "--workers",
            "2",
        ]);
        assert_eq!(threaded, reference, "{sweep}: threaded workers differ");
    }
}

#[test]
fn killed_pool_resumes_to_the_identical_table() {
    let reference = stdout_of(&["--sweep", "e6", "--k-max", "4"]);
    for processes in ["1", "2", "4"] {
        let prefix = temp_prefix(&format!("crash-{processes}"));
        let prefix_s = prefix.to_string_lossy().into_owned();
        // Kill the sweep mid-run: every worker stops dead after 300
        // tokens (well inside the k=4 instance stream) having persisted
        // only whole 64-token segments.
        let crashed = experiments(&[
            "--sweep",
            "e6",
            "--k-max",
            "4",
            "--processes",
            processes,
            "--store",
            &prefix_s,
            "--checkpoint-every",
            "64",
            "--crash-after-tokens",
            "300",
        ]);
        assert_eq!(
            crashed.status.code(),
            Some(WORKER_CRASH_EXIT),
            "stderr: {}",
            String::from_utf8_lossy(&crashed.stderr)
        );
        assert!(
            String::from_utf8_lossy(&crashed.stderr).contains("resume"),
            "crash message tells the operator how to continue"
        );
        // Resume from nothing but the shard store files.
        let resumed = stdout_of(&[
            "--sweep",
            "e6",
            "--k-max",
            "4",
            "--processes",
            processes,
            "--store",
            &prefix_s,
            "--checkpoint-every",
            "64",
            "--resume",
        ]);
        assert_eq!(
            resumed, reference,
            "{processes}-process resumed table differs from uninterrupted"
        );
        cleanup_prefix(&prefix);
    }
}

#[test]
fn f1_pool_with_persistence_survives_a_kill_too() {
    // The F1 sweep checkpoints two fleets (quantum registers included).
    let reference = stdout_of(&["--sweep", "f1", "--k-max", "3"]);
    let prefix = temp_prefix("f1-crash");
    let prefix_s = prefix.to_string_lossy().into_owned();
    let crashed = experiments(&[
        "--sweep",
        "f1",
        "--k-max",
        "3",
        "--processes",
        "2",
        "--store",
        &prefix_s,
        "--checkpoint-every",
        "32",
        "--crash-after-tokens",
        "100",
    ]);
    assert_eq!(crashed.status.code(), Some(WORKER_CRASH_EXIT));
    let resumed = stdout_of(&[
        "--sweep",
        "f1",
        "--k-max",
        "3",
        "--processes",
        "2",
        "--store",
        &prefix_s,
        "--checkpoint-every",
        "32",
        "--resume",
    ]);
    assert_eq!(resumed, reference);
    cleanup_prefix(&prefix);
}

#[test]
fn stale_stores_are_refused_without_resume() {
    let prefix = temp_prefix("stale");
    let prefix_s = prefix.to_string_lossy().into_owned();
    let first = experiments(&[
        "--sweep",
        "e6",
        "--k-max",
        "2",
        "--processes",
        "2",
        "--store",
        &prefix_s,
        "--checkpoint-every",
        "16",
    ]);
    assert!(first.status.success());
    // Re-running fresh over the leftover stores must refuse, loudly.
    let second = experiments(&[
        "--sweep",
        "e6",
        "--k-max",
        "2",
        "--processes",
        "2",
        "--store",
        &prefix_s,
        "--checkpoint-every",
        "16",
    ]);
    assert_eq!(second.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&second.stderr).contains("already exists"),
        "stderr: {}",
        String::from_utf8_lossy(&second.stderr)
    );
    // With --resume the finished shards replay from their last
    // checkpoints and the table matches the plain run.
    let resumed = stdout_of(&[
        "--sweep",
        "e6",
        "--k-max",
        "2",
        "--processes",
        "2",
        "--store",
        &prefix_s,
        "--checkpoint-every",
        "16",
        "--resume",
    ]);
    assert_eq!(resumed, stdout_of(&["--sweep", "e6", "--k-max", "2"]));
    cleanup_prefix(&prefix);
}

#[test]
fn orphaned_locks_block_fresh_runs() {
    let prefix = temp_prefix("orphan");
    let prefix_s = prefix.to_string_lossy().into_owned();
    // Simulate a kill that left shard 0's lock file behind (the
    // simulated-crash path releases locks; a real SIGKILL would not).
    let lock = PathBuf::from(format!("{prefix_s}.e6.shard0of1.cps.lock"));
    std::fs::write(&lock, b"314159").expect("orphan lock");
    let blocked = experiments(&[
        "--sweep",
        "e6",
        "--k-max",
        "2",
        "--processes",
        "1",
        "--store",
        &prefix_s,
        "--checkpoint-every",
        "16",
    ]);
    assert_eq!(blocked.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&blocked.stderr).contains("lock"),
        "stderr: {}",
        String::from_utf8_lossy(&blocked.stderr)
    );
    // A resume run owns the shard files and may break the orphan (the
    // parent reaped the only possible writer).
    let resumed = experiments(&[
        "--sweep",
        "e6",
        "--k-max",
        "2",
        "--processes",
        "1",
        "--store",
        &prefix_s,
        "--checkpoint-every",
        "16",
        "--resume",
    ]);
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    cleanup_prefix(&prefix);
}

#[test]
fn cli_rejects_inconsistent_flag_combinations() {
    for (args, needle) in [
        (
            vec!["--sweep", "e6", "--resume"],
            "--resume requires --store",
        ),
        (
            vec!["--sweep", "e6", "--crash-after-tokens", "5"],
            "--crash-after-tokens requires --store",
        ),
        (vec!["--store", "/tmp/x"], "requires --sweep"),
        (vec!["--processes", "2"], "requires --sweep"),
        (
            vec!["--sweep", "e6", "--worker"],
            "--worker requires --shard",
        ),
        (
            vec!["--sweep", "e6", "--worker", "--shard", "5", "--of", "2"],
            "must be < --of",
        ),
        (vec!["--sweep", "nope"], "expected one of"),
        (vec!["--sweep", "e6", "--k-max", "99"], "between 1 and"),
    ] {
        let out = experiments(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(needle),
            "{args:?}: stderr {:?}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
