//! The cross-process scheduler's contract, pinned against the real
//! `experiments` binary (spawned as OS processes, exactly as a user
//! would run it):
//!
//! * 1/2/4-process runs of **every registered sweep** (E6, F1, F3, F4)
//!   print tables **byte-identical** to the in-process `--workers N`
//!   runs;
//! * a sweep killed mid-run (worker processes exiting the crash way)
//!   and resumed from the persisted shard stores prints the identical
//!   table — and the resume *skips* instances whose outcomes were
//!   persisted;
//! * `--compact` shrinks resume-heavy stores via atomic rename and a
//!   further `--resume` still prints the identical table;
//! * a worker that dies with a real error surfaces its stderr tail in
//!   the parent's error message;
//! * stale stores are refused without `--resume`, and orphaned lock
//!   files block a fresh run until broken.
//!
//! CI runs this suite under `--release`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const WORKER_CRASH_EXIT: i32 = 9;

fn experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("spawn experiments binary")
}

fn stdout_of(args: &[&str]) -> String {
    let out = experiments(args);
    assert!(
        out.status.success(),
        "experiments {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 table")
}

fn temp_prefix(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("oqsc-pool-{}-{name}", std::process::id()));
    p
}

fn cleanup_prefix(prefix: &Path) {
    let dir = prefix.parent().expect("temp dir");
    let stem = prefix
        .file_name()
        .expect("prefix name")
        .to_string_lossy()
        .into_owned();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().starts_with(&stem) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

/// The sweep registry, as CLI argument lists: every entry must satisfy
/// the cross-process identity contract. F3/F4 use small Monte-Carlo
/// fleets so the suite stays fast; identity is size-independent.
fn registry_args() -> Vec<Vec<&'static str>> {
    vec![
        vec!["--sweep", "e6", "--k-max", "4"],
        vec!["--sweep", "f1", "--k-max", "4"],
        vec!["--sweep", "f3", "--k-max", "2", "--trials", "40"],
        vec!["--sweep", "f4", "--k-max", "2", "--trials", "30"],
    ]
}

#[test]
fn process_pools_print_tables_byte_identical_to_in_process_runs() {
    for base in registry_args() {
        let sweep = base[1];
        let reference = stdout_of(&[&base[..], &["--workers", "2"]].concat());
        assert!(
            reference.contains('|') || reference.contains("correct") || reference.contains("k"),
            "{sweep}: table shape"
        );
        for processes in ["1", "2", "4"] {
            let pooled = stdout_of(&[&base[..], &["--processes", processes]].concat());
            assert_eq!(
                pooled, reference,
                "{sweep}: {processes}-process table differs from in-process"
            );
        }
        // Threads inside worker processes compose with process sharding
        // without touching the table.
        let threaded = stdout_of(&[&base[..], &["--processes", "2", "--workers", "2"]].concat());
        assert_eq!(threaded, reference, "{sweep}: threaded workers differ");
    }
}

#[test]
fn killed_pool_resumes_to_the_identical_table() {
    let reference = stdout_of(&["--sweep", "e6", "--k-max", "4"]);
    for processes in ["1", "2", "4"] {
        let prefix = temp_prefix(&format!("crash-{processes}"));
        let prefix_s = prefix.to_string_lossy().into_owned();
        // Kill the sweep mid-run: every worker stops dead after 300
        // tokens (well inside the k=4 instance stream) having persisted
        // only whole 64-token segments.
        let crashed = experiments(&[
            "--sweep",
            "e6",
            "--k-max",
            "4",
            "--processes",
            processes,
            "--store",
            &prefix_s,
            "--checkpoint-every",
            "64",
            "--crash-after-tokens",
            "300",
        ]);
        assert_eq!(
            crashed.status.code(),
            Some(WORKER_CRASH_EXIT),
            "stderr: {}",
            String::from_utf8_lossy(&crashed.stderr)
        );
        assert!(
            String::from_utf8_lossy(&crashed.stderr).contains("resume"),
            "crash message tells the operator how to continue"
        );
        // Resume from nothing but the shard store files.
        let resumed = stdout_of(&[
            "--sweep",
            "e6",
            "--k-max",
            "4",
            "--processes",
            processes,
            "--store",
            &prefix_s,
            "--checkpoint-every",
            "64",
            "--resume",
        ]);
        assert_eq!(
            resumed, reference,
            "{processes}-process resumed table differs from uninterrupted"
        );
        cleanup_prefix(&prefix);
    }
}

#[test]
fn f1_pool_with_persistence_survives_a_kill_too() {
    // The F1 sweep checkpoints two fleets (quantum registers included).
    let reference = stdout_of(&["--sweep", "f1", "--k-max", "3"]);
    let prefix = temp_prefix("f1-crash");
    let prefix_s = prefix.to_string_lossy().into_owned();
    let crashed = experiments(&[
        "--sweep",
        "f1",
        "--k-max",
        "3",
        "--processes",
        "2",
        "--store",
        &prefix_s,
        "--checkpoint-every",
        "32",
        "--crash-after-tokens",
        "100",
    ]);
    assert_eq!(crashed.status.code(), Some(WORKER_CRASH_EXIT));
    let resumed = stdout_of(&[
        "--sweep",
        "f1",
        "--k-max",
        "3",
        "--processes",
        "2",
        "--store",
        &prefix_s,
        "--checkpoint-every",
        "32",
        "--resume",
    ]);
    assert_eq!(resumed, reference);
    cleanup_prefix(&prefix);
}

#[test]
fn f3_and_f4_pools_with_persistence_survive_kills_too() {
    for (base, crash) in [
        (
            vec!["--sweep", "f3", "--k-max", "2", "--trials", "30"],
            "200",
        ),
        (
            vec!["--sweep", "f4", "--k-max", "2", "--trials", "25"],
            "150",
        ),
    ] {
        let sweep = base[1];
        let reference = stdout_of(&base);
        let prefix = temp_prefix(&format!("{sweep}-crash"));
        let prefix_s = prefix.to_string_lossy().into_owned();
        let store_args = ["--store", &prefix_s, "--checkpoint-every", "16"];
        let crashed = experiments(
            &[
                &base[..],
                &["--processes", "2"],
                &store_args,
                &["--crash-after-tokens", crash],
            ]
            .concat(),
        );
        assert_eq!(
            crashed.status.code(),
            Some(WORKER_CRASH_EXIT),
            "{sweep}: stderr: {}",
            String::from_utf8_lossy(&crashed.stderr)
        );
        let resumed =
            stdout_of(&[&base[..], &["--processes", "2"], &store_args, &["--resume"]].concat());
        assert_eq!(resumed, reference, "{sweep}: resumed table differs");
        cleanup_prefix(&prefix);
    }
}

#[test]
fn compaction_between_resumes_keeps_tables_byte_identical() {
    // The satellite smoke cycle, end to end against the real binary:
    // kill → resume (table A) → --compact → resume again (table B);
    // A == B == the uninterrupted reference, and every store file
    // shrank.
    let base = ["--sweep", "e6", "--k-max", "4"];
    let reference = stdout_of(&base);
    let prefix = temp_prefix("compact-cycle");
    let prefix_s = prefix.to_string_lossy().into_owned();
    let store_args = ["--store", &prefix_s, "--checkpoint-every", "32"];
    let crashed = experiments(
        &[
            &base[..],
            &["--processes", "2"],
            &store_args,
            &["--crash-after-tokens", "300"],
        ]
        .concat(),
    );
    assert_eq!(crashed.status.code(), Some(WORKER_CRASH_EXIT));
    let first = stdout_of(&[&base[..], &["--processes", "2"], &store_args, &["--resume"]].concat());
    assert_eq!(first, reference, "resume before compaction");
    let sizes_before: Vec<(PathBuf, u64)> = store_files(&prefix);
    assert!(!sizes_before.is_empty(), "shard stores exist");
    // Compact every shard store under the prefix.
    let compacted = experiments(&["--compact", &prefix_s]);
    assert!(
        compacted.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&compacted.stderr)
    );
    let report = String::from_utf8_lossy(&compacted.stdout).into_owned();
    for (path, before) in &sizes_before {
        let after = std::fs::metadata(path).expect("still there").len();
        assert!(
            after < *before,
            "{}: {before} -> {after} bytes",
            path.display()
        );
        assert!(
            report.contains(&path.display().to_string()),
            "compaction reported {}",
            path.display()
        );
    }
    // A further resume over the compacted stores: byte-identical, and
    // instant (every instance finished, so outcomes are just read back).
    let second =
        stdout_of(&[&base[..], &["--processes", "2"], &store_args, &["--resume"]].concat());
    assert_eq!(second, reference, "resume after compaction");
    cleanup_prefix(&prefix);
}

fn store_files(prefix: &Path) -> Vec<(PathBuf, u64)> {
    let dir = prefix.parent().expect("temp dir");
    let stem = prefix
        .file_name()
        .expect("prefix name")
        .to_string_lossy()
        .into_owned();
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir).expect("read dir").flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with(&stem) && name.ends_with(".cps") {
            let len = entry.metadata().expect("metadata").len();
            found.push((entry.path(), len));
        }
    }
    found.sort();
    found
}

#[test]
fn failed_workers_surface_their_stderr_in_the_parent_error() {
    // Point the shard stores into a directory that does not exist: the
    // worker dies with a real store error on stderr, and the parent's
    // error message must carry that tail (not just an exit code).
    let mut missing = std::env::temp_dir();
    missing.push(format!("oqsc-pool-missing-{}", std::process::id()));
    missing.push("nope");
    missing.push("prefix");
    let missing_s = missing.to_string_lossy().into_owned();
    let out = experiments(&[
        "--sweep",
        "e6",
        "--k-max",
        "2",
        "--processes",
        "2",
        "--store",
        &missing_s,
        "--checkpoint-every",
        "16",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("worker shard"),
        "parent names the shard: {stderr}"
    );
    assert!(
        stderr.contains("I/O error") || stderr.contains("No such file"),
        "parent surfaces the child's own message: {stderr}"
    );
}

#[test]
fn compact_validates_its_flags_and_missing_prefixes() {
    // --break-locks without --compact, and --compact mixed with a sweep,
    // are flag errors (exit 2) with pointed messages.
    for (args, needle) in [
        (vec!["--break-locks"], "--break-locks requires --compact"),
        (
            vec!["--compact", "/tmp/x", "--sweep", "e6"],
            "--compact cannot be combined with --sweep",
        ),
        (
            vec!["--compact", "/tmp/x", "--resume"],
            "--compact cannot be combined with --resume",
        ),
        (
            vec!["--sweep", "e6", "--trials", "5"],
            "--trials only applies",
        ),
        (vec!["--trials", "5"], "--trials requires --sweep"),
    ] {
        let out = experiments(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(needle),
            "{args:?}: stderr {:?}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // A prefix matching no store files is a clear runtime error (exit 1).
    let mut nowhere = std::env::temp_dir();
    nowhere.push(format!("oqsc-compact-nothing-{}", std::process::id()));
    let out = experiments(&["--compact", &nowhere.to_string_lossy()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no checkpoint stores"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn stale_stores_are_refused_without_resume() {
    let prefix = temp_prefix("stale");
    let prefix_s = prefix.to_string_lossy().into_owned();
    let first = experiments(&[
        "--sweep",
        "e6",
        "--k-max",
        "2",
        "--processes",
        "2",
        "--store",
        &prefix_s,
        "--checkpoint-every",
        "16",
    ]);
    assert!(first.status.success());
    // Re-running fresh over the leftover stores must refuse, loudly.
    let second = experiments(&[
        "--sweep",
        "e6",
        "--k-max",
        "2",
        "--processes",
        "2",
        "--store",
        &prefix_s,
        "--checkpoint-every",
        "16",
    ]);
    assert_eq!(second.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&second.stderr).contains("already exists"),
        "stderr: {}",
        String::from_utf8_lossy(&second.stderr)
    );
    // With --resume the finished shards replay from their last
    // checkpoints and the table matches the plain run.
    let resumed = stdout_of(&[
        "--sweep",
        "e6",
        "--k-max",
        "2",
        "--processes",
        "2",
        "--store",
        &prefix_s,
        "--checkpoint-every",
        "16",
        "--resume",
    ]);
    assert_eq!(resumed, stdout_of(&["--sweep", "e6", "--k-max", "2"]));
    cleanup_prefix(&prefix);
}

#[test]
fn orphaned_locks_block_fresh_runs() {
    let prefix = temp_prefix("orphan");
    let prefix_s = prefix.to_string_lossy().into_owned();
    // Simulate a kill that left shard 0's lock file behind (the
    // simulated-crash path releases locks; a real SIGKILL would not).
    let lock = PathBuf::from(format!("{prefix_s}.e6.shard0of1.cps.lock"));
    std::fs::write(&lock, b"314159").expect("orphan lock");
    let blocked = experiments(&[
        "--sweep",
        "e6",
        "--k-max",
        "2",
        "--processes",
        "1",
        "--store",
        &prefix_s,
        "--checkpoint-every",
        "16",
    ]);
    assert_eq!(blocked.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&blocked.stderr).contains("lock"),
        "stderr: {}",
        String::from_utf8_lossy(&blocked.stderr)
    );
    // A resume run owns the shard files and may break the orphan (the
    // parent reaped the only possible writer).
    let resumed = experiments(&[
        "--sweep",
        "e6",
        "--k-max",
        "2",
        "--processes",
        "1",
        "--store",
        &prefix_s,
        "--checkpoint-every",
        "16",
        "--resume",
    ]);
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    cleanup_prefix(&prefix);
}

#[test]
fn cli_rejects_inconsistent_flag_combinations() {
    for (args, needle) in [
        (
            vec!["--sweep", "e6", "--resume"],
            "--resume requires --store",
        ),
        (
            vec!["--sweep", "e6", "--crash-after-tokens", "5"],
            "--crash-after-tokens requires --store",
        ),
        (vec!["--store", "/tmp/x"], "requires --sweep"),
        (vec!["--processes", "2"], "requires --sweep"),
        (
            vec!["--sweep", "e6", "--worker"],
            "--worker requires --shard",
        ),
        (
            vec!["--sweep", "e6", "--worker", "--shard", "5", "--of", "2"],
            "must be < --of",
        ),
        (vec!["--sweep", "nope"], "expected one of"),
        (vec!["--sweep", "e6", "--k-max", "99"], "between 1 and"),
    ] {
        let out = experiments(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(needle),
            "{args:?}: stderr {:?}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
