//! The distributed sweep fabric's contract:
//!
//! * a coordinator plus workers over a **Unix socket** produce rows
//!   equal to the in-process sweep — including with a deliberately
//!   throttled straggler whose tail gets stolen;
//! * the same holds over **TCP** even when a client leases a range and
//!   vanishes without reporting: the lease lapses and the range is
//!   re-leased to a live worker;
//! * the lease state machine itself ([`FabricState::handle`]) is pinned
//!   sockets-free — grant coverage, steal policy, TTL expiry, premature
//!   `DONE` rejection, sweep-identity checks, and store-backed resume.
//!
//! The binary-level version (SIGKILL a worker process mid-sweep, then
//! resume the coordinator from its store) runs in CI's fabric smoke.

use oqsc_bench::{
    fabric_work, fleet_outcomes, split_fabric_instance_id, Coordinator, FabricConfig, FabricState,
    SweepSpec, WorkerConfig,
};
use oqsc_machine::{BatchRunner, SessionSchedule};
use oqsc_serve::{FabricRequest, FabricResponse};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn spec_e6(k_max: u32) -> SweepSpec {
    SweepSpec::from_cli("e6", k_max, 0).expect("e6 spec")
}

fn reference_rows(spec: SweepSpec) -> oqsc_bench::SweepRows {
    spec.rows_in_process(&BatchRunner::new(2), SessionSchedule::Uninterrupted)
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("oqsc-fabric-{}-{name}", std::process::id()))
}

#[test]
fn unix_fabric_with_a_straggler_matches_the_in_process_sweep() {
    let spec = spec_e6(4);
    let reference = reference_rows(spec);
    let sock = temp_path("unix.sock");
    let _ = std::fs::remove_file(&sock);
    let addr = sock.to_string_lossy().into_owned();
    let coordinator = Coordinator::bind(
        &addr,
        spec,
        FabricConfig {
            lease_size: 2,
            lease_ttl: Duration::from_millis(500),
            ..FabricConfig::default()
        },
    )
    .expect("bind coordinator");

    let (rows, slow, fast) = std::thread::scope(|scope| {
        let coord = scope.spawn(move || coordinator.run().expect("coordinate"));
        // A deliberate straggler: one instance per 40 ms guarantees the
        // fast worker exhausts the open pool and steals its tail.
        let slow = scope.spawn(|| {
            fabric_work(
                &addr,
                spec,
                &WorkerConfig {
                    worker_id: 1,
                    throttle: Some(Duration::from_millis(40)),
                    heartbeat_every: Duration::from_millis(100),
                    ..WorkerConfig::default()
                },
            )
            .expect("slow worker")
        });
        let fast = scope.spawn(|| {
            fabric_work(
                &addr,
                spec,
                &WorkerConfig {
                    worker_id: 2,
                    threads: 2,
                    heartbeat_every: Duration::from_millis(100),
                    ..WorkerConfig::default()
                },
            )
            .expect("fast worker")
        });
        (
            coord.join().expect("coordinator thread"),
            slow.join().expect("slow thread"),
            fast.join().expect("fast thread"),
        )
    });

    assert_eq!(rows, reference, "fabric rows differ from in-process");
    assert!(!sock.exists(), "coordinator unlinks its socket");
    // Both workers took part, and together they covered everything (the
    // straggler may double-report stolen indices — that's the design).
    assert!(fast.leases > 0 && fast.instances > 0, "{fast:?}");
    assert!(slow.leases > 0, "{slow:?}");
}

#[test]
fn tcp_fabric_releases_a_vanished_clients_lease() {
    let spec = spec_e6(3);
    let reference = reference_rows(spec);
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        spec,
        FabricConfig {
            lease_size: 2,
            lease_ttl: Duration::from_millis(300),
            wait_millis: 50,
            ..FabricConfig::default()
        },
    )
    .expect("bind coordinator");
    let addr = coordinator.local_addr();
    assert!(addr.contains(':'), "tcp address: {addr}");

    // Asserts live outside the scope: a panic inside would leave the
    // coordinator serving forever and deadlock the join.
    let (rows, grant_line, report) = std::thread::scope(|scope| {
        let coord = scope.spawn(move || coordinator.run().expect("coordinate"));

        // A client that leases a range and disconnects without reporting
        // a single outcome (no heartbeat either): its lease must lapse
        // after the TTL and the range go back to the open pool.
        let grant_line = {
            let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
            stream
                .write_all(b"LEASE 99 e6 3 0\n")
                .expect("lease request");
            stream.flush().expect("flush");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("grant line");
            line
            // Drop both halves: the vanishing act.
        };

        let worker = scope.spawn(|| {
            fabric_work(
                &addr,
                spec,
                &WorkerConfig {
                    worker_id: 7,
                    heartbeat_every: Duration::from_millis(100),
                    ..WorkerConfig::default()
                },
            )
            .expect("worker")
        });
        let report = worker.join().expect("worker thread");
        let rows = coord.join().expect("coordinator thread");
        (rows, grant_line, report)
    });
    assert!(grant_line.starts_with("LEASE "), "got: {grant_line}");
    assert!(report.instances > 0, "{report:?}");
    assert_eq!(rows, reference, "re-leased rows differ from in-process");
}

#[test]
fn f1_fabric_survives_a_mid_lease_death() {
    // The F1 sweep (two fleets, quantum registers included), with a
    // worker that dies holding a lease: a raw client leases a range and
    // vanishes without reporting; after the TTL the surviving worker
    // re-runs the range and the table still matches in-process.
    let spec = SweepSpec::from_cli("f1", 4, 0).expect("f1 spec");
    let reference = reference_rows(spec);
    let sock = temp_path("f1.sock");
    let _ = std::fs::remove_file(&sock);
    let addr = sock.to_string_lossy().into_owned();
    let coordinator = Coordinator::bind(
        &addr,
        spec,
        FabricConfig {
            lease_size: 2,
            lease_ttl: Duration::from_millis(300),
            wait_millis: 50,
            ..FabricConfig::default()
        },
    )
    .expect("bind coordinator");

    let (rows, grant_line, report) = std::thread::scope(|scope| {
        let coordinator = coordinator;
        let coord = scope.spawn(move || coordinator.run().expect("coordinate"));
        let grant_line = {
            let mut stream = std::os::unix::net::UnixStream::connect(&sock).expect("connect");
            stream
                .write_all(b"LEASE 99 f1 4 0\n")
                .expect("lease request");
            stream.flush().expect("flush");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("grant line");
            line
            // Dies mid-lease: no OUTCOME, no RENEW, no DONE.
        };
        let worker = scope.spawn(|| {
            fabric_work(
                &addr,
                spec,
                &WorkerConfig {
                    worker_id: 3,
                    threads: 2,
                    heartbeat_every: Duration::from_millis(100),
                    ..WorkerConfig::default()
                },
            )
            .expect("worker")
        });
        let report = worker.join().expect("worker thread");
        let rows = coord.join().expect("coordinator thread");
        (rows, grant_line, report)
    });
    assert!(grant_line.starts_with("LEASE "), "got: {grant_line}");
    assert!(report.instances > 0, "{report:?}");
    assert_eq!(rows, reference, "f1 rows differ after a mid-lease death");
}

/// Drives a [`FabricState`] to completion by replaying granted ranges
/// through [`fleet_outcomes`] — the sockets-free worker.
fn run_range(state: &mut FabricState, spec: SweepSpec, lease: u64, fleet: &str, range: (u64, u64)) {
    let indices: Vec<usize> = (range.0 as usize..range.1 as usize).collect();
    let outcomes = fleet_outcomes(spec, fleet, &indices, 1).expect("run range");
    let now = Instant::now();
    for (&index, outcome) in indices.iter().zip(&outcomes) {
        let ok = state
            .handle(
                &FabricRequest::Outcome {
                    fleet: fleet.to_string(),
                    index: index as u64,
                    outcome: *outcome,
                },
                now,
            )
            .expect("outcome accepted");
        assert_eq!(
            ok,
            FabricResponse::Ok {
                token: index as u64
            }
        );
    }
    let done = state
        .handle(&FabricRequest::Done { lease }, now)
        .expect("done accepted");
    assert_eq!(done, FabricResponse::Ok { token: lease });
}

fn lease_of(state: &mut FabricState, worker: u64, now: Instant) -> FabricResponse {
    state
        .handle(
            &FabricRequest::Lease {
                worker,
                sweep: "e6".to_string(),
                k_max: 4,
                trials: 0,
            },
            now,
        )
        .expect("lease handled")
}

#[test]
fn lease_machine_grants_steals_expires_and_verifies_done() {
    let spec = spec_e6(4);
    let reference = reference_rows(spec);
    let total = spec.fleets().iter().map(|&(_, n)| n).sum::<usize>();
    let mut state = FabricState::new(
        spec,
        FabricConfig {
            lease_size: total.div_ceil(2),
            lease_ttl: Duration::from_secs(60),
            ..FabricConfig::default()
        },
    )
    .expect("state");
    assert_eq!(state.remaining(), total);
    let now = Instant::now();

    // A mismatched sweep identity is refused outright.
    let err = state
        .handle(
            &FabricRequest::Lease {
                worker: 1,
                sweep: "e6".to_string(),
                k_max: 9,
                trials: 0,
            },
            now,
        )
        .expect_err("wrong k_max");
    assert!(err.contains("does not match"), "{err}");

    // Two chunks cover the fleet; worker 1 takes both.
    let FabricResponse::Grant {
        lease: l1,
        fleet,
        start: s1,
        end: e1,
    } = lease_of(&mut state, 1, now)
    else {
        panic!("first grant")
    };
    let FabricResponse::Grant {
        lease: l2,
        start: s2,
        end: e2,
        ..
    } = lease_of(&mut state, 1, now)
    else {
        panic!("second grant")
    };
    assert_eq!((s1 as usize, e2 as usize), (0, total), "contiguous cover");
    assert_eq!(e1, s2, "half-open ranges abut");

    // Worker 1 already holds every chunk: it cannot steal from itself.
    assert_eq!(
        lease_of(&mut state, 1, now),
        FabricResponse::Wait { millis: 200 }
    );
    // Worker 2 can — it duplicates the least-contended chunk (the first).
    let FabricResponse::Grant {
        lease: stolen,
        start,
        ..
    } = lease_of(&mut state, 2, now)
    else {
        panic!("steal grant")
    };
    assert_eq!(start, s1, "steal duplicates the first chunk");

    // DONE before the range is fully reported is a protocol error and
    // retires nothing.
    let err = state
        .handle(&FabricRequest::Done { lease: l1 }, now)
        .expect_err("premature DONE");
    assert!(err.contains("fully reported"), "{err}");

    // Worker 2 finishes the stolen copy; that retires worker 1's lease
    // on the same chunk too, and 1's next RENEW says EXPIRED.
    run_range(&mut state, spec, stolen, &fleet, (s1, e1));
    assert_eq!(
        state
            .handle(&FabricRequest::Renew { lease: l1 }, now)
            .expect("renew handled"),
        FabricResponse::Expired { lease: l1 }
    );

    // Let worker 1's second lease lapse: after the TTL a HEARTBEAT has
    // nothing to renew and the chunk returns to the open pool...
    let after_ttl = now + Duration::from_secs(61);
    run_range(&mut state, spec, l2, &fleet, (s2, e2));
    // ...unless, as here, it was already completed before the lapse —
    // so the sweep is simply done and further leases answer FINISHED.
    assert_eq!(
        state
            .handle(&FabricRequest::Heartbeat { worker: 1 }, after_ttl)
            .expect("heartbeat handled"),
        FabricResponse::Ok { token: 1 }
    );
    assert!(state.is_complete());
    assert_eq!(lease_of(&mut state, 2, after_ttl), FabricResponse::Finished);
    assert_eq!(state.finish().expect("rows"), reference);
}

#[test]
fn ttl_expiry_reopens_a_lapsed_chunk() {
    let spec = spec_e6(4);
    let total = spec.fleets().iter().map(|&(_, n)| n).sum::<usize>();
    let mut state = FabricState::new(
        spec,
        FabricConfig {
            lease_size: total, // one chunk: the whole fleet
            lease_ttl: Duration::from_millis(100),
            ..FabricConfig::default()
        },
    )
    .expect("state");
    let now = Instant::now();
    let FabricResponse::Grant { lease, .. } = lease_of(&mut state, 1, now) else {
        panic!("grant")
    };
    // Renewed in time, the lease survives...
    let later = now + Duration::from_millis(80);
    assert_eq!(
        state
            .handle(&FabricRequest::Renew { lease }, later)
            .expect("renew handled"),
        FabricResponse::Ok { token: lease }
    );
    // ...but after a silent TTL it lapses, and the whole chunk is open
    // again for the next worker — a fresh lease id on the same range.
    let lapsed = later + Duration::from_millis(101);
    let FabricResponse::Grant {
        lease: release,
        start,
        end,
        ..
    } = lease_of(&mut state, 2, lapsed)
    else {
        panic!("re-grant")
    };
    assert_ne!(release, lease);
    assert_eq!((start as usize, end as usize), (0, total));
    assert_eq!(
        state
            .handle(&FabricRequest::Renew { lease }, lapsed)
            .expect("renew handled"),
        FabricResponse::Expired { lease }
    );
}

#[test]
fn store_backed_fabric_resumes_and_refuses_fresh_reuse() {
    let spec = spec_e6(4);
    let reference = reference_rows(spec);
    let total = spec.fleets().iter().map(|&(_, n)| n).sum::<usize>();
    let store = temp_path("resume.cps");
    let _ = std::fs::remove_file(&store);
    let half = total.div_ceil(2);
    let durable = FabricConfig {
        lease_size: half,
        lease_ttl: Duration::from_secs(60),
        store_path: Some(store.clone()),
        ..FabricConfig::default()
    };

    // First coordinator: complete exactly one chunk, then "crash" (drop).
    {
        let mut state = FabricState::new(spec, durable.clone()).expect("fresh state");
        let now = Instant::now();
        let FabricResponse::Grant {
            lease,
            fleet,
            start,
            end,
        } = lease_of(&mut state, 1, now)
        else {
            panic!("grant")
        };
        run_range(&mut state, spec, lease, &fleet, (start, end));
        assert_eq!(state.remaining(), total - half);
    }

    // A fresh (non-resume) run over the leftover store must refuse it.
    let err = FabricState::new(spec, durable.clone());
    assert!(err.is_err(), "stale store accepted by a fresh run");

    // Resume: the persisted chunk is already retired, only the second
    // half is leased out, and the final rows are identical.
    let mut state = FabricState::new(
        spec,
        FabricConfig {
            resume: true,
            ..durable
        },
    )
    .expect("resume state");
    assert_eq!(state.remaining(), total - half);
    let now = Instant::now();
    let FabricResponse::Grant {
        lease,
        fleet,
        start,
        end,
    } = lease_of(&mut state, 2, now)
    else {
        panic!("resume grant")
    };
    assert_eq!(
        (start as usize, end as usize),
        (half, total),
        "resume leases only the unfinished half"
    );
    run_range(&mut state, spec, lease, &fleet, (start, end));
    assert!(state.is_complete());
    assert_eq!(state.finish().expect("rows"), reference);
    let _ = std::fs::remove_file(&store);
}

#[test]
fn fabric_instance_ids_round_trip() {
    for (fleet, index) in [(0, 0), (1, 1), (3, (1 << 48) - 1), (7, 123_456_789)] {
        let id = oqsc_bench::fabric_instance_id(fleet, index);
        assert_eq!(split_fabric_instance_id(id), (fleet, index));
    }
}
