//! Instance and adversarial-input generators.
//!
//! Every experiment needs three input families:
//! members of `L_DISJ` (disjoint pairs), well-shaped non-members (planted
//! intersections, the Grover targets of procedure A3), and malformed words
//! exercising each failure mode of conditions (i)–(iii) from the proof of
//! Theorem 3.4 (the inputs procedures A1 and A2 must catch).

use crate::instance::{string_len, LdisjInstance};
use crate::token::Sym;
use rand::Rng;

/// Samples a *member*: a uniformly random disjoint pair. Per coordinate the
/// pattern `(x_i, y_i)` is drawn uniformly from `{(0,0), (0,1), (1,0)}`.
pub fn random_member<R: Rng + ?Sized>(k: u32, rng: &mut R) -> LdisjInstance {
    let m = string_len(k);
    let mut x = vec![false; m];
    let mut y = vec![false; m];
    for i in 0..m {
        match rng.gen_range(0..3) {
            0 => {}
            1 => x[i] = true,
            _ => y[i] = true,
        }
    }
    LdisjInstance::new(k, x, y)
}

/// Samples a well-shaped *non-member* with exactly `t ≥ 1` intersecting
/// coordinates (the paper's unknown number of Grover solutions).
///
/// # Panics
/// If `t = 0` or `t > 2^{2k}`.
pub fn random_nonmember<R: Rng + ?Sized>(k: u32, t: usize, rng: &mut R) -> LdisjInstance {
    let m = string_len(k);
    assert!(t >= 1 && t <= m, "need 1 ≤ t ≤ m");
    let inst = random_member(k, rng);
    let mut x = inst.x().to_vec();
    let mut y = inst.y().to_vec();
    // Choose t coordinates to intersect (partial Fisher–Yates).
    let mut idx: Vec<usize> = (0..m).collect();
    for j in 0..t {
        let pick = rng.gen_range(j..m);
        idx.swap(j, pick);
        x[idx[j]] = true;
        y[idx[j]] = true;
    }
    let out = LdisjInstance::new(k, x, y);
    debug_assert_eq!(out.intersections(), t);
    out
}

/// Samples `(x, y)` with i.i.d. Bernoulli(density) bits — membership is
/// then random (distribution studies).
pub fn random_pair<R: Rng + ?Sized>(k: u32, density: f64, rng: &mut R) -> LdisjInstance {
    let m = string_len(k);
    let x = (0..m).map(|_| rng.gen_bool(density)).collect();
    let y = (0..m).map(|_| rng.gen_bool(density)).collect();
    LdisjInstance::new(k, x, y)
}

/// The structural corruptions the online procedures must detect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Malformation {
    /// Drop the `1^k#` prefix entirely (condition (i), caught by A1).
    MissingPrefix,
    /// Make one block one bit short (condition (i), caught by A1).
    ShortBlock,
    /// Append a stray bit after the final `#` (condition (i), caught by A1).
    TrailingSymbol,
    /// Truncate the word in the middle of a round (condition (i)).
    Truncated,
    /// Flip one bit of one `z` block so `z⁽ʳ⁾ ≠ x⁽ʳ⁾` (condition (ii),
    /// caught by A2).
    ZCopyMismatch,
    /// Flip one bit of a non-first `x` block so the rounds disagree
    /// (condition (ii), caught by A2).
    XDriftAcrossRounds,
    /// Flip one bit of a non-first `y` block (condition (iii), caught by
    /// A2).
    YDriftAcrossRounds,
}

/// All malformation kinds (for exhaustive sweeps).
pub const ALL_MALFORMATIONS: [Malformation; 7] = [
    Malformation::MissingPrefix,
    Malformation::ShortBlock,
    Malformation::TrailingSymbol,
    Malformation::Truncated,
    Malformation::ZCopyMismatch,
    Malformation::XDriftAcrossRounds,
    Malformation::YDriftAcrossRounds,
];

/// Corrupts a well-formed encoding according to `kind`. The result is
/// guaranteed **not** to be in `L_DISJ` (it violates one of the three
/// conditions), regardless of the instance's disjointness.
///
/// Bit-flip corruptions require `k ≥ 1` rounds ≥ 2, which Definition 3.3
/// guarantees (`2^k ≥ 2`).
pub fn malform<R: Rng + ?Sized>(inst: &LdisjInstance, kind: Malformation, rng: &mut R) -> Vec<Sym> {
    let mut word = inst.encode();
    let k = inst.k() as usize;
    let m = inst.m();
    // Offsets into the encoding: prefix is k+1 symbols; each block is m+1
    // symbols (m bits then '#'); round r starts at k+1 + 3r(m+1).
    let block_start = |round: usize, slot: usize| k + 1 + (3 * round + slot) * (m + 1);
    match kind {
        Malformation::MissingPrefix => {
            word.drain(0..k + 1);
        }
        Malformation::ShortBlock => {
            let round = rng.gen_range(0..inst.rounds());
            let slot = rng.gen_range(0..3);
            word.remove(block_start(round, slot));
        }
        Malformation::TrailingSymbol => {
            word.push(Sym::from_bit(rng.gen()));
        }
        Malformation::Truncated => {
            let keep = rng.gen_range(k + 2..word.len());
            word.truncate(keep);
        }
        Malformation::ZCopyMismatch => {
            let round = rng.gen_range(0..inst.rounds());
            let bit = rng.gen_range(0..m);
            flip(&mut word, block_start(round, 2) + bit);
        }
        Malformation::XDriftAcrossRounds => {
            let round = rng.gen_range(1..inst.rounds());
            let bit = rng.gen_range(0..m);
            flip(&mut word, block_start(round, 0) + bit);
        }
        Malformation::YDriftAcrossRounds => {
            let round = rng.gen_range(1..inst.rounds());
            let bit = rng.gen_range(0..m);
            flip(&mut word, block_start(round, 1) + bit);
        }
    }
    word
}

fn flip(word: &mut [Sym], pos: usize) {
    word[pos] = match word[pos] {
        Sym::Zero => Sym::One,
        Sym::One => Sym::Zero,
        Sym::Hash => unreachable!("bit positions never hold #"),
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{is_in_ldisj, parse_shape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn members_are_members() {
        let mut rng = StdRng::seed_from_u64(10);
        for k in 1..=3u32 {
            for _ in 0..20 {
                let inst = random_member(k, &mut rng);
                assert!(inst.is_member());
                assert!(is_in_ldisj(&inst.encode()));
            }
        }
    }

    #[test]
    fn nonmembers_have_exact_intersections() {
        let mut rng = StdRng::seed_from_u64(11);
        for k in 1..=3u32 {
            let m = string_len(k);
            for t in [1usize, 2, m / 2, m] {
                let inst = random_nonmember(k, t, &mut rng);
                assert_eq!(inst.intersections(), t);
                assert!(!inst.is_member());
                assert!(!is_in_ldisj(&inst.encode()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "1 ≤ t ≤ m")]
    fn nonmember_t_zero_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        random_nonmember(1, 0, &mut rng);
    }

    #[test]
    fn every_malformation_leaves_the_language() {
        let mut rng = StdRng::seed_from_u64(12);
        for k in 1..=3u32 {
            for _ in 0..5 {
                let inst = random_member(k, &mut rng);
                for kind in ALL_MALFORMATIONS {
                    let word = malform(&inst, kind, &mut rng);
                    assert!(
                        !is_in_ldisj(&word),
                        "k={k} {kind:?} should leave the language"
                    );
                }
            }
        }
    }

    #[test]
    fn shape_malformations_break_shape_and_consistency_ones_do_not() {
        let mut rng = StdRng::seed_from_u64(13);
        let inst = random_member(2, &mut rng);
        for kind in [
            Malformation::MissingPrefix,
            Malformation::ShortBlock,
            Malformation::TrailingSymbol,
            Malformation::Truncated,
        ] {
            let word = malform(&inst, kind, &mut rng);
            assert!(parse_shape(&word).is_err(), "{kind:?} should break shape");
        }
        for kind in [
            Malformation::ZCopyMismatch,
            Malformation::XDriftAcrossRounds,
            Malformation::YDriftAcrossRounds,
        ] {
            let word = malform(&inst, kind, &mut rng);
            let parsed = parse_shape(&word).expect("shape intact");
            assert!(
                !parsed.copies_consistent(),
                "{kind:?} should break copy consistency"
            );
        }
    }

    #[test]
    fn random_pair_density_extremes() {
        let mut rng = StdRng::seed_from_u64(14);
        let all_zero = random_pair(1, 0.0, &mut rng);
        assert!(all_zero.is_member());
        let all_one = random_pair(1, 1.0, &mut rng);
        assert!(!all_one.is_member());
        assert_eq!(all_one.intersections(), all_one.m());
    }
}
