//! Well-formed `L_DISJ` instances.
//!
//! Definition 3.3 of the paper:
//!
//! ```text
//! L_DISJ = { 1^k # (x#y#x#)^{2^k} | k ≥ 1, x,y ∈ {0,1}^{2^{2k}},
//!            DISJ_{2^{2k}}(x, y) = 1 }
//! ```
//!
//! A [`LdisjInstance`] is the underlying data `(k, x, y)`; encoding to the
//! paper's input word, the disjointness predicate, and the exact size
//! formulas live here.

use crate::token::{bits_to_syms, Sym};

/// The data `(k, x, y)` underlying a syntactically well-formed input of the
/// form `1^k # (x#y#x#)^{2^k}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LdisjInstance {
    k: u32,
    x: Vec<bool>,
    y: Vec<bool>,
}

/// `DISJ_n(x, y) = 1` iff no index has `x_i = y_i = 1` (the paper's
/// Section 3.1 communication problem).
pub fn disj(x: &[bool], y: &[bool]) -> bool {
    assert_eq!(x.len(), y.len(), "DISJ needs equal lengths");
    x.iter().zip(y).all(|(&a, &b)| !(a && b))
}

/// Number of intersecting coordinates `|{i : x_i = y_i = 1}|` (the paper's
/// `t`, which drives the Grover success probability).
pub fn intersection_count(x: &[bool], y: &[bool]) -> usize {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).filter(|(&a, &b)| a && b).count()
}

impl LdisjInstance {
    /// Creates an instance from strings of length exactly `2^{2k}`.
    ///
    /// # Panics
    /// If `k = 0` or either string has the wrong length.
    pub fn new(k: u32, x: Vec<bool>, y: Vec<bool>) -> Self {
        assert!(k >= 1, "the language requires k ≥ 1");
        let m = string_len(k);
        assert_eq!(x.len(), m, "x must have length 2^(2k) = {m}");
        assert_eq!(y.len(), m, "y must have length 2^(2k) = {m}");
        LdisjInstance { k, x, y }
    }

    /// The parameter `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The string `x`.
    #[inline]
    pub fn x(&self) -> &[bool] {
        &self.x
    }

    /// The string `y`.
    #[inline]
    pub fn y(&self) -> &[bool] {
        &self.y
    }

    /// String length `m = 2^{2k}`.
    #[inline]
    pub fn m(&self) -> usize {
        string_len(self.k)
    }

    /// Number of `x#y#x#` rounds, `2^k`.
    #[inline]
    pub fn rounds(&self) -> usize {
        1usize << self.k
    }

    /// True iff `DISJ(x, y) = 1`, i.e. iff the encoded word is in
    /// `L_DISJ`.
    pub fn is_member(&self) -> bool {
        disj(&self.x, &self.y)
    }

    /// The paper's `t`: the number of intersecting coordinates.
    pub fn intersections(&self) -> usize {
        intersection_count(&self.x, &self.y)
    }

    /// The symbol at position `pos` of the encoded word, without
    /// materializing the word (`O(1)` time and space). Positions beyond
    /// the encoded length return `None`.
    pub fn symbol_at(&self, pos: usize) -> Option<Sym> {
        let k = self.k as usize;
        let m = self.m();
        if pos < k {
            return Some(Sym::One);
        }
        if pos == k {
            return Some(Sym::Hash);
        }
        let offset = pos - (k + 1);
        let block = offset / (m + 1);
        if block >= 3 * self.rounds() {
            return None;
        }
        let within = offset % (m + 1);
        if within == m {
            return Some(Sym::Hash);
        }
        let bit = match block % 3 {
            0 | 2 => self.x[within],
            _ => self.y[within],
        };
        Some(Sym::from_bit(bit))
    }

    /// Streams the encoded word symbol by symbol without allocating it —
    /// the natural input mode for the online machines, and the only
    /// practical one for large `k` (the `k = 8` word is 5·10⁷ symbols).
    pub fn stream(&self) -> impl Iterator<Item = Sym> + '_ {
        (0..encoded_len(self.k)).map(move |p| self.symbol_at(p).expect("within length"))
    }

    /// [`Self::stream`], but consuming the instance: an owning iterator
    /// with no borrow, which is what a batch task factory must hand to a
    /// worker thread together with a fresh decider.
    pub fn into_stream(self) -> impl Iterator<Item = Sym> {
        (0..encoded_len(self.k)).map(move |p| self.symbol_at(p).expect("within length"))
    }

    /// Encodes to the input word `1^k # (x#y#x#)^{2^k}`.
    pub fn encode(&self) -> Vec<Sym> {
        let mut out = Vec::with_capacity(encoded_len(self.k));
        out.extend(std::iter::repeat_n(Sym::One, self.k as usize));
        out.push(Sym::Hash);
        let xs = bits_to_syms(&self.x);
        let ys = bits_to_syms(&self.y);
        for _ in 0..self.rounds() {
            out.extend_from_slice(&xs);
            out.push(Sym::Hash);
            out.extend_from_slice(&ys);
            out.push(Sym::Hash);
            out.extend_from_slice(&xs);
            out.push(Sym::Hash);
        }
        debug_assert_eq!(out.len(), encoded_len(self.k));
        out
    }
}

/// String length `m = 2^{2k}`.
#[inline]
pub fn string_len(k: u32) -> usize {
    1usize << (2 * k)
}

/// Exact encoded input length:
/// `n = k + 1 + 2^k · 3 · (2^{2k} + 1) = Θ(2^{3k})`.
#[inline]
pub fn encoded_len(k: u32) -> usize {
    k as usize + 1 + (1usize << k) * 3 * (string_len(k) + 1)
}

/// The `k` whose encoded length equals `n`, if any (inverse of
/// [`encoded_len`] — used to express space bounds "in terms of the input
/// length" as the paper's Theorem 3.6 does).
pub fn k_for_encoded_len(n: usize) -> Option<u32> {
    (1..=20u32).find(|&k| encoded_len(k) == n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::to_string;

    #[test]
    fn disj_predicate() {
        assert!(disj(&[false, false], &[true, true]));
        assert!(disj(&[true, false], &[false, true]));
        assert!(!disj(&[true, false], &[true, false]));
        assert!(disj(&[], &[]));
    }

    #[test]
    fn intersection_counting() {
        assert_eq!(
            intersection_count(&[true, true, false], &[true, false, true]),
            1
        );
        assert_eq!(intersection_count(&[true, true], &[true, true]), 2);
        assert_eq!(intersection_count(&[false; 4], &[true; 4]), 0);
    }

    #[test]
    fn sizes_for_k1() {
        // k = 1: m = 4, rounds = 2, n = 1 + 1 + 2·3·5 = 32.
        assert_eq!(string_len(1), 4);
        assert_eq!(encoded_len(1), 32);
        assert_eq!(k_for_encoded_len(32), Some(1));
        assert_eq!(k_for_encoded_len(33), None);
    }

    #[test]
    fn sizes_grow_as_2_to_3k() {
        for k in 1..8u32 {
            let ratio = encoded_len(k + 1) as f64 / encoded_len(k) as f64;
            assert!(ratio > 6.0 && ratio < 9.5, "k={k}: ratio {ratio}");
        }
    }

    #[test]
    fn golden_encoding_k1() {
        // x = 1010, y = 0101 (disjoint): word = 1#(1010#0101#1010#)^2
        let inst = LdisjInstance::new(
            1,
            vec![true, false, true, false],
            vec![false, true, false, true],
        );
        assert!(inst.is_member());
        assert_eq!(
            to_string(&inst.encode()),
            "1#1010#0101#1010#1010#0101#1010#"
        );
        assert_eq!(inst.encode().len(), encoded_len(1));
    }

    #[test]
    fn membership_tracks_disjointness() {
        let m = string_len(1);
        let x = vec![true; m];
        let y = vec![true; m];
        let inst = LdisjInstance::new(1, x, y);
        assert!(!inst.is_member());
        assert_eq!(inst.intersections(), m);
    }

    #[test]
    fn accessors() {
        let inst = LdisjInstance::new(1, vec![false; 4], vec![true; 4]);
        assert_eq!(inst.k(), 1);
        assert_eq!(inst.m(), 4);
        assert_eq!(inst.rounds(), 2);
        assert_eq!(inst.x(), &[false; 4]);
        assert_eq!(inst.y(), &[true; 4]);
    }

    #[test]
    fn streaming_encoder_matches_materialized() {
        for k in 1..=3u32 {
            let m = string_len(k);
            let x: Vec<bool> = (0..m).map(|i| i % 3 == 1).collect();
            let y: Vec<bool> = (0..m).map(|i| i % 5 == 2).collect();
            let inst = LdisjInstance::new(k, x, y);
            let materialized = inst.encode();
            let streamed: Vec<Sym> = inst.stream().collect();
            assert_eq!(streamed, materialized, "k={k}");
            assert_eq!(inst.symbol_at(materialized.len()), None);
            assert_eq!(inst.symbol_at(usize::MAX / 2), None);
        }
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn k_zero_rejected() {
        LdisjInstance::new(0, vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "length 2^(2k)")]
    fn wrong_length_rejected() {
        LdisjInstance::new(1, vec![true; 3], vec![true; 4]);
    }
}
