//! Instance-ensemble statistics.
//!
//! The experiments sample instances from two families: planted-`t`
//! non-members and i.i.d.-density pairs. This module provides the closed
//! forms governing those ensembles — membership probability, expected
//! intersection count, the density at which membership probability is
//! 1/2 — so generators and experiment configurations can be chosen
//! deliberately (e.g. F4 plants `t = 1` because random density-`d` pairs
//! at any fixed `d` have exponentially vanishing membership probability,
//! which would make the "hard" regime untestable by rejection sampling).

/// Probability that an i.i.d. Bernoulli(`d`)² pair of length-`m` strings
/// is disjoint: `(1 − d²)^m`.
pub fn membership_probability(m: usize, density: f64) -> f64 {
    assert!((0.0..=1.0).contains(&density));
    (1.0 - density * density).powi(m as i32)
}

/// Expected number of intersecting coordinates: `m·d²`.
pub fn expected_intersections(m: usize, density: f64) -> f64 {
    m as f64 * density * density
}

/// The density at which the membership probability equals `target`:
/// `d = √(1 − target^{1/m})`.
pub fn density_for_membership(m: usize, target: f64) -> f64 {
    assert!(m >= 1 && (0.0..1.0).contains(&target) && target > 0.0);
    (1.0 - target.powf(1.0 / m as f64)).sqrt()
}

/// Exact distribution of the intersection count under i.i.d. density
/// `d`: `P[t] = C(m, t)·(d²)^t·(1 − d²)^{m−t}` (binomial). Returned for
/// `t = 0..=m`.
pub fn intersection_distribution(m: usize, density: f64) -> Vec<f64> {
    assert!(m <= 1 << 16, "distribution vector too large");
    let p = density * density;
    let q = 1.0 - p;
    // Iterative binomial pmf to avoid factorial overflow.
    let mut pmf = Vec::with_capacity(m + 1);
    let mut cur = q.powi(m as i32);
    pmf.push(cur);
    for t in 1..=m {
        // pmf[t] = pmf[t−1] · (m−t+1)/t · p/q.
        if q == 0.0 {
            cur = if t == m { 1.0 } else { 0.0 };
        } else {
            cur = cur * ((m - t + 1) as f64 / t as f64) * (p / q);
        }
        pmf.push(cur);
    }
    pmf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_pair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn membership_probability_edges() {
        assert_eq!(membership_probability(16, 0.0), 1.0);
        assert_eq!(membership_probability(16, 1.0), 0.0);
        let p = membership_probability(4, 0.5);
        assert!((p - 0.75f64.powi(4)).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(220);
        let k = 2u32;
        let m = crate::string_len(k);
        let d = 0.2;
        let trials = 4000;
        let members = (0..trials)
            .filter(|_| random_pair(k, d, &mut rng).is_member())
            .count();
        let freq = members as f64 / trials as f64;
        let exact = membership_probability(m, d);
        assert!((freq - exact).abs() < 0.03, "freq {freq} vs exact {exact}");
    }

    #[test]
    fn density_inversion_roundtrip() {
        for m in [4usize, 16, 64] {
            for target in [0.25, 0.5, 0.9] {
                let d = density_for_membership(m, target);
                let back = membership_probability(m, d);
                assert!((back - target).abs() < 1e-9, "m={m} target={target}");
            }
        }
    }

    #[test]
    fn half_membership_density_shrinks_with_m() {
        let d4 = density_for_membership(4, 0.5);
        let d64 = density_for_membership(64, 0.5);
        let d1024 = density_for_membership(1024, 0.5);
        assert!(d4 > d64 && d64 > d1024);
        // Asymptotically d ≈ √(ln 2 / m).
        let predicted = (std::f64::consts::LN_2 / 1024.0).sqrt();
        assert!((d1024 - predicted).abs() / predicted < 0.05);
    }

    #[test]
    fn distribution_sums_to_one_and_matches_expectation() {
        for (m, d) in [(8usize, 0.3), (16, 0.5), (32, 0.1)] {
            let pmf = intersection_distribution(m, d);
            assert_eq!(pmf.len(), m + 1);
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "m={m} d={d}: sum {total}");
            let mean: f64 = pmf.iter().enumerate().map(|(t, p)| t as f64 * p).sum();
            assert!((mean - expected_intersections(m, d)).abs() < 1e-9);
            // t = 0 mass is the membership probability.
            assert!((pmf[0] - membership_probability(m, d)).abs() < 1e-12);
        }
    }

    #[test]
    fn extreme_density_distribution() {
        let pmf = intersection_distribution(8, 1.0);
        assert!((pmf[8] - 1.0).abs() < 1e-12);
        assert!(pmf[..8].iter().all(|&p| p.abs() < 1e-12));
    }
}
