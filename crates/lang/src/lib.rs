//! # oqsc-lang — the language `L_DISJ` (Definition 3.3)
//!
//! The total language of the paper's separation:
//!
//! ```text
//! L_DISJ = { 1^k # (x#y#x#)^{2^k} | k ≥ 1, x,y ∈ {0,1}^{2^{2k}},
//!            DISJ_{2^{2k}}(x, y) = 1 }
//! ```
//!
//! * [`token`] — the alphabet `Σ = {0, 1, #}`;
//! * [`instance`] — the data `(k, x, y)`, the encoder, `DISJ`, exact size
//!   formulas (`n = k + 1 + 3·2^k·(2^{2k}+1) = Θ(2^{3k})`);
//! * [`parse`] — offline parser and the unbounded-space reference decider;
//! * [`gen`] — random members, planted-intersection non-members, and the
//!   seven structural malformations procedures A1/A2 must detect.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod gen;
pub mod instance;
pub mod parse;
pub mod stats;
pub mod token;

pub use gen::{
    malform, random_member, random_nonmember, random_pair, Malformation, ALL_MALFORMATIONS,
};
pub use instance::{disj, encoded_len, intersection_count, string_len, LdisjInstance};
pub use parse::{is_in_ldisj, parse_shape, ParsedWord, ShapeError};
pub use stats::{
    density_for_membership, expected_intersections, intersection_distribution,
    membership_probability,
};
pub use token::Sym;
