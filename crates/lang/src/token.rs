//! The ternary input alphabet `Σ = {0, 1, #}`.

/// One input symbol of the paper's alphabet `Σ = {0, 1, #}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sym {
    /// The bit `0`.
    Zero,
    /// The bit `1`.
    One,
    /// The separator `#`.
    Hash,
}

impl Sym {
    /// Converts a boolean bit.
    #[inline]
    pub fn from_bit(b: bool) -> Sym {
        if b {
            Sym::One
        } else {
            Sym::Zero
        }
    }

    /// The bit value, or `None` for `#`.
    #[inline]
    pub fn bit(self) -> Option<bool> {
        match self {
            Sym::Zero => Some(false),
            Sym::One => Some(true),
            Sym::Hash => None,
        }
    }

    /// Parses a character of `{'0','1','#'}`.
    pub fn from_char(c: char) -> Option<Sym> {
        match c {
            '0' => Some(Sym::Zero),
            '1' => Some(Sym::One),
            '#' => Some(Sym::Hash),
            _ => None,
        }
    }

    /// The display character.
    pub fn to_char(self) -> char {
        match self {
            Sym::Zero => '0',
            Sym::One => '1',
            Sym::Hash => '#',
        }
    }
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Renders a symbol slice as a string (for diagnostics and golden tests).
pub fn to_string(syms: &[Sym]) -> String {
    syms.iter().map(|s| s.to_char()).collect()
}

/// Parses a string of `{0,1,#}` characters.
pub fn from_str(s: &str) -> Option<Vec<Sym>> {
    s.chars().map(Sym::from_char).collect()
}

/// Converts a bit slice to symbols.
pub fn bits_to_syms(bits: &[bool]) -> Vec<Sym> {
    bits.iter().map(|&b| Sym::from_bit(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_roundtrip() {
        for s in [Sym::Zero, Sym::One, Sym::Hash] {
            assert_eq!(Sym::from_char(s.to_char()), Some(s));
        }
        assert_eq!(Sym::from_char('x'), None);
        assert_eq!(Sym::from_char('2'), None);
    }

    #[test]
    fn bit_mapping() {
        assert_eq!(Sym::from_bit(true), Sym::One);
        assert_eq!(Sym::from_bit(false), Sym::Zero);
        assert_eq!(Sym::One.bit(), Some(true));
        assert_eq!(Sym::Zero.bit(), Some(false));
        assert_eq!(Sym::Hash.bit(), None);
    }

    #[test]
    fn string_roundtrip() {
        let s = "1#01#10#";
        let syms = from_str(s).expect("valid");
        assert_eq!(to_string(&syms), s);
        assert_eq!(from_str("1#2"), None);
    }

    #[test]
    fn bits_conversion() {
        assert_eq!(
            bits_to_syms(&[true, false, true]),
            vec![Sym::One, Sym::Zero, Sym::One]
        );
    }
}
