//! Offline parsing and the reference decider for `L_DISJ`.
//!
//! This module is the ground truth every online algorithm in the
//! reproduction is compared against: it parses a whole input word (random
//! access, unbounded space) and decides membership by directly checking the three
//! conditions of the proof of Theorem 3.4 plus disjointness.

use crate::instance::{disj, string_len, LdisjInstance};
use crate::token::Sym;

/// Why a word fails the *syntactic* shape `1^k#(b^{2^{2k}}#)^{3·2^k}`
/// (condition (i) of Theorem 3.4's proof).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShapeError {
    /// Empty input or missing `1^k#` prefix (including `k = 0`).
    BadPrefix,
    /// A block contains a `#` too early or a non-bit where a bit belongs.
    WrongBlockLength {
        /// Index of the offending block (0-based).
        block: usize,
    },
    /// Input ended before `3·2^k` blocks were read.
    UnexpectedEnd,
    /// Symbols remain after the final block's `#`.
    TrailingSymbols,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::BadPrefix => write!(f, "missing 1^k# prefix"),
            ShapeError::WrongBlockLength { block } => {
                write!(f, "block {block} has the wrong length")
            }
            ShapeError::UnexpectedEnd => write!(f, "input truncated"),
            ShapeError::TrailingSymbols => write!(f, "trailing symbols after final block"),
        }
    }
}

impl std::error::Error for ShapeError {}

/// A syntactically well-shaped word: `k` and its `3·2^k` blocks in input
/// order (`x⁽¹⁾, y⁽¹⁾, z⁽¹⁾, x⁽²⁾, …`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedWord {
    /// The prefix parameter `k ≥ 1`.
    pub k: u32,
    /// All `3·2^k` blocks, each of length `2^{2k}`.
    pub blocks: Vec<Vec<bool>>,
}

impl ParsedWord {
    /// The block triple of round `r` (0-based): `(x⁽ʳ⁾, y⁽ʳ⁾, z⁽ʳ⁾)`.
    pub fn round(&self, r: usize) -> (&[bool], &[bool], &[bool]) {
        (
            &self.blocks[3 * r],
            &self.blocks[3 * r + 1],
            &self.blocks[3 * r + 2],
        )
    }

    /// Number of rounds `2^k`.
    pub fn rounds(&self) -> usize {
        1usize << self.k
    }

    /// Checks conditions (ii) and (iii): every `x⁽ⁱ⁾` and `z⁽ⁱ⁾` equals
    /// `x⁽¹⁾`, and every `y⁽ⁱ⁾` equals `y⁽¹⁾`.
    pub fn copies_consistent(&self) -> bool {
        let (x1, y1, _) = self.round(0);
        (0..self.rounds()).all(|r| {
            let (x, y, z) = self.round(r);
            x == x1 && z == x1 && y == y1
        })
    }

    /// Extracts the underlying instance when the copies are consistent.
    pub fn to_instance(&self) -> Option<LdisjInstance> {
        if !self.copies_consistent() {
            return None;
        }
        let (x, y, _) = self.round(0);
        Some(LdisjInstance::new(self.k, x.to_vec(), y.to_vec()))
    }
}

/// Parses the shape `1^k#(b^{2^{2k}}#)^{3·2^k}` (condition (i)).
pub fn parse_shape(word: &[Sym]) -> Result<ParsedWord, ShapeError> {
    // 1^k prefix.
    let k = word.iter().take_while(|&&s| s == Sym::One).count();
    if k == 0 || k > 20 || word.get(k) != Some(&Sym::Hash) {
        return Err(ShapeError::BadPrefix);
    }
    let k = k as u32;
    let m = string_len(k);
    let expected_blocks = 3 * (1usize << k);

    let mut blocks = Vec::with_capacity(expected_blocks);
    let mut pos = k as usize + 1;
    for block_idx in 0..expected_blocks {
        let mut bits = Vec::with_capacity(m);
        loop {
            match word.get(pos) {
                None => return Err(ShapeError::UnexpectedEnd),
                Some(Sym::Hash) => {
                    pos += 1;
                    break;
                }
                Some(s) => {
                    bits.push(s.bit().expect("only # has no bit"));
                    if bits.len() > m {
                        return Err(ShapeError::WrongBlockLength { block: block_idx });
                    }
                    pos += 1;
                }
            }
        }
        if bits.len() != m {
            return Err(ShapeError::WrongBlockLength { block: block_idx });
        }
        blocks.push(bits);
    }
    if pos != word.len() {
        return Err(ShapeError::TrailingSymbols);
    }
    Ok(ParsedWord { k, blocks })
}

/// The reference decider: `true` iff `word ∈ L_DISJ` (Definition 3.3).
/// Uses unbounded space; this is the oracle the bounded-space online
/// algorithms are validated against.
pub fn is_in_ldisj(word: &[Sym]) -> bool {
    match parse_shape(word) {
        Err(_) => false,
        Ok(parsed) => match parsed.to_instance() {
            None => false,
            Some(inst) => disj(inst.x(), inst.y()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::from_str;

    fn syms(s: &str) -> Vec<Sym> {
        from_str(s).expect("valid symbols")
    }

    #[test]
    fn parses_valid_k1_word() {
        let w = syms("1#1010#0101#1010#1010#0101#1010#");
        let parsed = parse_shape(&w).expect("well shaped");
        assert_eq!(parsed.k, 1);
        assert_eq!(parsed.blocks.len(), 6);
        assert!(parsed.copies_consistent());
        assert!(is_in_ldisj(&w));
    }

    #[test]
    fn rejects_intersecting_strings() {
        // x = 1010, y = 1101: intersect at index 0 (and 2? x_2=1,y_2=0 no).
        let w = syms("1#1010#1101#1010#1010#1101#1010#");
        let parsed = parse_shape(&w).expect("well shaped");
        assert!(parsed.copies_consistent());
        assert!(!is_in_ldisj(&w));
    }

    #[test]
    fn rejects_inconsistent_copies() {
        // z-block of round 1 differs from x.
        let w = syms("1#1010#0101#1011#1010#0101#1010#");
        let parsed = parse_shape(&w).expect("still well shaped");
        assert!(!parsed.copies_consistent());
        assert_eq!(parsed.to_instance(), None);
        assert!(!is_in_ldisj(&w));
    }

    #[test]
    fn rejects_y_drift_between_rounds() {
        let w = syms("1#1010#0101#1010#1010#0100#1010#");
        let parsed = parse_shape(&w).expect("well shaped");
        assert!(!parsed.copies_consistent());
        assert!(!is_in_ldisj(&w));
    }

    #[test]
    fn shape_errors() {
        assert_eq!(parse_shape(&syms("")), Err(ShapeError::BadPrefix));
        assert_eq!(parse_shape(&syms("#1010#")), Err(ShapeError::BadPrefix));
        assert_eq!(parse_shape(&syms("01#")), Err(ShapeError::BadPrefix));
        // k = 1 but block of length 3.
        assert_eq!(
            parse_shape(&syms("1#101#0101#1010#1010#0101#1010#")),
            Err(ShapeError::WrongBlockLength { block: 0 })
        );
        // Block too long.
        assert_eq!(
            parse_shape(&syms("1#10100#0101#1010#1010#0101#1010#")),
            Err(ShapeError::WrongBlockLength { block: 0 })
        );
        // Truncated after three blocks.
        assert_eq!(
            parse_shape(&syms("1#1010#0101#1010#")),
            Err(ShapeError::UnexpectedEnd)
        );
        // Trailing garbage.
        assert_eq!(
            parse_shape(&syms("1#1010#0101#1010#1010#0101#1010#1")),
            Err(ShapeError::TrailingSymbols)
        );
    }

    #[test]
    fn missing_final_hash_is_unexpected_end() {
        assert_eq!(
            parse_shape(&syms("1#1010#0101#1010#1010#0101#1010")),
            Err(ShapeError::UnexpectedEnd)
        );
    }

    #[test]
    fn instance_roundtrip_through_parser() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        for k in 1..=3u32 {
            let m = string_len(k);
            let x: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
            let y: Vec<bool> = (0..m).map(|i| !x[i] && rng.gen()).collect();
            let inst = LdisjInstance::new(k, x, y);
            let word = inst.encode();
            let parsed = parse_shape(&word).expect("well shaped");
            assert_eq!(parsed.to_instance().expect("consistent"), inst);
            assert_eq!(is_in_ldisj(&word), inst.is_member());
        }
    }

    #[test]
    fn round_accessor() {
        let w = syms("1#1010#0101#1010#1110#0101#1010#");
        let parsed = parse_shape(&w).expect("shape ok");
        let (x, y, z) = parsed.round(1);
        assert_eq!(x, &[true, true, true, false]);
        assert_eq!(y, &[false, true, false, true]);
        assert_eq!(z, &[true, false, true, false]);
    }
}
