//! The serving rung's non-negotiable contract, pinned: for any LRU
//! budget (including evict-on-every-feed), any eviction/interleaving
//! order, and any worker count, the mux engine's per-session verdicts
//! and metering are `==`-identical to uninterrupted
//! `run_decider_stream` — for all seven deciders, with the quantum ones
//! on all four backends (the full 16-kind catalog).

use oqsc_machine::{run_decider_stream, CheckpointStore, RunOutcome};
use oqsc_serve::{demo_fleet, AnyDecider, MuxConfig, MuxEngine};
use std::sync::Mutex;

/// How one worker walks its sessions each round — three different LRU
/// churn patterns over the same per-session token order.
#[derive(Clone, Copy, Debug)]
enum Order {
    /// Round-robin in fleet order.
    Forward,
    /// Round-robin in reverse fleet order.
    Reversed,
    /// Fleet order rotated by one more slot every round.
    Rotating,
}

/// The reference table: direct uninterrupted runs, no engine.
fn reference(base_seed: u64) -> Vec<(u64, RunOutcome)> {
    demo_fleet(base_seed)
        .into_iter()
        .map(|(id, kind, seed, word)| (id, run_decider_stream(kind.build(seed), word)))
        .collect()
}

/// Drives the demo fleet through `engine` on `workers` threads, feeding
/// `chunk`-token slices in the given walk order, and returns the
/// outcomes sorted by id.
fn run_interleaved(
    engine: &MuxEngine<AnyDecider>,
    base_seed: u64,
    chunk: usize,
    workers: usize,
    order: Order,
) -> Vec<(u64, RunOutcome)> {
    let fleet = demo_fleet(base_seed);
    let mut lanes: Vec<Vec<_>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, entry) in fleet.into_iter().enumerate() {
        lanes[i % workers].push(entry);
    }
    let rows = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for lane in lanes {
            scope.spawn(|| {
                for (id, kind, seed, _) in &lane {
                    engine.open(*id, kind.build(*seed)).expect("open");
                }
                let mut cursors: Vec<(u64, Vec<_>, usize)> = lane
                    .into_iter()
                    .map(|(id, _, _, word)| (id, word, 0))
                    .collect();
                let n = cursors.len();
                let mut round = 0usize;
                loop {
                    let mut progressed = false;
                    for slot in 0..n {
                        let idx = match order {
                            Order::Forward => slot,
                            Order::Reversed => n - 1 - slot,
                            Order::Rotating => (slot + round) % n,
                        };
                        let (id, word, pos) = &mut cursors[idx];
                        if *pos < word.len() {
                            let end = (*pos + chunk).min(word.len());
                            engine.feed(*id, &word[*pos..end]).expect("feed");
                            *pos = end;
                            progressed = true;
                        }
                    }
                    if !progressed {
                        break;
                    }
                    round += 1;
                }
                let mut local = Vec::with_capacity(n);
                for (id, _, _) in cursors {
                    local.push((id, engine.finish(id).expect("finish")));
                }
                rows.lock().expect("rows").extend(local);
            });
        }
    });
    let mut rows = rows.into_inner().expect("rows");
    rows.sort_unstable_by_key(|(id, _)| *id);
    rows
}

#[test]
fn mux_matches_direct_runs_across_budgets_orders_and_workers() {
    const SEED: u64 = 0x5E21E;
    let expected = reference(SEED);
    // Budget axis: evict-on-every-feed (0), a tight budget that keeps a
    // handful of sessions live, and an effectively unlimited one.
    for live_budget in [0usize, 4 << 10, 1 << 30] {
        for workers in [1usize, 2, 8] {
            for order in [Order::Forward, Order::Reversed, Order::Rotating] {
                // The pathological budget also gets the pathological
                // chunk size: one token per feed, every feed a full
                // evict + rehydrate cycle.
                let chunk = if live_budget == 0 { 1 } else { 5 };
                let engine = MuxEngine::new(MuxConfig {
                    live_bytes_budget: live_budget,
                    warm_bytes_budget: 1 << 30,
                    shards: 4,
                    ..MuxConfig::default()
                });
                let got = run_interleaved(&engine, SEED, chunk, workers, order);
                assert_eq!(
                    got, expected,
                    "budget {live_budget}, workers {workers}, order {order:?}"
                );
                let stats = engine.stats();
                assert_eq!(stats.finished, expected.len() as u64);
                if live_budget == 0 {
                    // Every feed after open really did evict.
                    assert!(
                        stats.evictions >= stats.tokens,
                        "budget 0 must evict on every feed: {stats:?}"
                    );
                }
            }
        }
    }
}

/// The batched-feed (`FEEDS` → one `feed` call) identity, at *every*
/// cut point: each session's word is split into a head batch and a tail
/// batch at every position, and the outcome must equal the
/// uninterrupted run. At budget 0 every batch straddles a full evict +
/// rehydrate cycle — the "batch straddling an eviction" case.
#[test]
fn batched_feeds_at_every_cut_point_match_direct_runs() {
    const SEED: u64 = 0xFEED5;
    let fleet = demo_fleet(SEED);
    let expected = reference(SEED);
    for live_budget in [0usize, 4 << 10] {
        for workers in [1usize, 8] {
            let engine = MuxEngine::<AnyDecider>::new(MuxConfig {
                live_bytes_budget: live_budget,
                warm_bytes_budget: 1 << 30,
                shards: 4,
                ..MuxConfig::default()
            });
            // One fresh session per (fleet entry, cut point); ids are
            // single-use, so each job gets its own.
            let jobs: Vec<(u64, usize, usize)> = fleet
                .iter()
                .enumerate()
                .flat_map(|(slot, (id, _, _, word))| {
                    (0..=word.len()).map(move |cut| (id * 4096 + cut as u64, slot, cut))
                })
                .collect();
            let mut lanes: Vec<Vec<(u64, usize, usize)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, job) in jobs.into_iter().enumerate() {
                lanes[i % workers].push(job);
            }
            std::thread::scope(|scope| {
                for lane in lanes {
                    scope.spawn(|| {
                        for (uid, slot, cut) in lane {
                            let (_, kind, seed, word) = &fleet[slot];
                            engine.open(uid, kind.build(*seed)).expect("open");
                            if cut > 0 {
                                engine.feed(uid, &word[..cut]).expect("head batch");
                            }
                            if cut < word.len() {
                                engine.feed(uid, &word[cut..]).expect("tail batch");
                            }
                            let got = engine.finish(uid).expect("finish");
                            assert_eq!(
                                got, expected[slot].1,
                                "budget {live_budget}, workers {workers}, \
                                 session {slot}, cut {cut}"
                            );
                        }
                    });
                }
            });
            if live_budget == 0 {
                let stats = engine.stats();
                assert!(
                    stats.evictions > 0 && stats.hydrations > 0,
                    "budget 0 batches must straddle evictions: {stats:?}"
                );
            }
        }
    }
}

#[test]
fn mux_matches_direct_runs_through_the_spill_store() {
    const SEED: u64 = 0xCA7;
    let expected = reference(SEED);
    let path = std::env::temp_dir().join(format!(
        "oqsc-mux-identity-spill-{}.cps",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let store = CheckpointStore::create_for::<AnyDecider>(&path).expect("create");
    // Live and warm budgets both zero: every suspended session round
    // trips through the store's append + latest read-back path.
    let engine = MuxEngine::with_spill(
        MuxConfig {
            live_bytes_budget: 0,
            warm_bytes_budget: 0,
            shards: 2,
            ..MuxConfig::default()
        },
        store,
    );
    let got = run_interleaved(&engine, SEED, 3, 2, Order::Forward);
    assert_eq!(got, expected);
    let stats = engine.stats();
    assert!(stats.spills > 0, "spill tier never engaged: {stats:?}");
    assert!(stats.spill_hydrations > 0, "never read back: {stats:?}");
    let _ = std::fs::remove_file(&path);
}
