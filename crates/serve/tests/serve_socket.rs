//! End-to-end: a Unix-socket server under a churn-forcing budget, driven
//! through the text protocol, must reproduce direct runs byte for byte —
//! the in-process version of the CI serve smoke.

use oqsc_serve::{
    demo_fleet, direct_outcome_lines, drive_socket, shutdown_socket, stats_socket, MuxConfig,
    Server, ServerConfig,
};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

fn socket_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "oqsc-serve-test-{}-{name}.sock",
        std::process::id()
    ))
}

#[test]
fn served_fleet_matches_direct_runs_byte_for_byte() {
    const SEED: u64 = 0xD21F7; // deterministic driver seed
    let path = socket_path("identity");
    let server = Server::bind(
        &path,
        ServerConfig {
            threads: 3,
            mux: MuxConfig {
                // Tight enough that the demo fleet churns through the
                // warm tier constantly.
                live_bytes_budget: 2 << 10,
                warm_bytes_budget: 1 << 30,
                shards: 4,
            },
        },
    )
    .expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let served = drive_socket(&path, SEED).expect("drive");
    let direct = direct_outcome_lines(SEED);
    assert_eq!(served, direct);

    let stats = stats_socket(&path).expect("stats");
    assert!(stats.starts_with("STATS "), "bad stats line: {stats}");

    shutdown_socket(&path).expect("shutdown");
    let final_stats = handle.join().expect("server thread");
    assert_eq!(final_stats.finished, direct.len() as u64);
    assert!(!path.exists(), "socket file should be removed on shutdown");
}

/// A client writing one byte every 60 ms crosses the server's 50 ms
/// read timeout in the middle of every single request line. The already
/// read prefix must survive each timeout — before the fix,
/// `handle_connection` cleared the line buffer at the top of its loop
/// and such a client saw its requests truncated into garbage.
#[test]
fn byte_at_a_time_slow_writer_is_never_corrupted() {
    const SEED: u64 = 0xD21F7; // same fleet as the identity test
    let path = socket_path("slow-writer");
    let server = Server::bind(&path, ServerConfig::default()).expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let mut writer = UnixStream::connect(&path).expect("connect");
    let mut reader = BufReader::new(writer.try_clone().expect("clone"));
    let mut trickle = |line: &str| -> String {
        for byte in format!("{line}\n").bytes() {
            writer.write_all(&[byte]).expect("write byte");
            writer.flush().expect("flush");
            // Longer than the server's 50 ms poll: every request line is
            // interrupted by several read timeouts mid-bytes.
            std::thread::sleep(Duration::from_millis(60));
        }
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        response.trim().to_string()
    };

    let (id, kind, seed, word) = demo_fleet(SEED).into_iter().next().expect("fleet");
    let open = trickle(&format!("OPEN {id} {} {seed}", kind.name()));
    assert_eq!(open, format!("OK {id} 0"));
    let text = oqsc_lang::token::to_string(&word);
    let feed = trickle(&format!("FEED {id} {text}"));
    assert!(feed.starts_with(&format!("OK {id} ")), "got: {feed}");
    let outcome = trickle(&format!("FINISH {id}"));
    assert_eq!(
        outcome,
        direct_outcome_lines(SEED)[id as usize],
        "a 1-byte-per-60ms client must see the exact direct-run outcome"
    );

    shutdown_socket(&path).expect("shutdown");
    handle.join().expect("server thread");
}

/// Binding replaces a *stale* socket file (dead server) and only a
/// stale one: a live server is refused, and a path that is not a socket
/// is never touched.
#[test]
fn bind_replaces_stale_sockets_but_refuses_live_servers_and_files() {
    // Stale: a socket file whose listener is gone accepts the bind.
    let stale = socket_path("stale");
    let dead = UnixListener::bind(&stale).expect("first bind");
    drop(dead); // closes the fd, leaves the socket file behind
    assert!(stale.exists(), "dead listener leaves its socket file");
    let server = Server::bind(&stale, ServerConfig::default()).expect("stale file is replaced");
    drop(server);
    let _ = std::fs::remove_file(&stale);

    // Live: a served socket is refused instead of clobbered.
    let live = socket_path("live");
    let server = Server::bind(&live, ServerConfig::default()).expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let err = match Server::bind(&live, ServerConfig::default()) {
        Ok(_) => panic!("live server must be refused"),
        Err(err) => err,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse, "{err}");
    // The refusal must not have unlinked the live server's socket.
    shutdown_socket(&live).expect("still serving after refused bind");
    handle.join().expect("server thread");

    // Not a socket: refused and preserved.
    let file = socket_path("plain-file");
    std::fs::write(&file, b"precious").expect("write");
    let err = match Server::bind(&file, ServerConfig::default()) {
        Ok(_) => panic!("regular file must be refused"),
        Err(err) => err,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists, "{err}");
    assert_eq!(std::fs::read(&file).expect("still there"), b"precious");
    let _ = std::fs::remove_file(&file);
}

#[test]
fn protocol_errors_leave_the_connection_usable() {
    let path = socket_path("errors");
    let server = Server::bind(&path, ServerConfig::default()).expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let mut writer = UnixStream::connect(&path).expect("connect");
    let mut reader = BufReader::new(writer.try_clone().expect("clone"));
    let mut ask = |line: &str| -> String {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        writer.flush().expect("flush");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        response.trim().to_string()
    };

    assert!(ask("NONSENSE").starts_with("ERR "));
    assert!(ask("FEED 99 1#0").starts_with("ERR unknown session"));
    assert_eq!(ask("OPEN 1 format 0"), "OK 1 0");
    assert!(ask("OPEN 1 format 0").starts_with("ERR "), "duplicate open");
    assert_eq!(ask("FEED 1 1#01"), "OK 1 4");
    let outcome = ask("FINISH 1");
    assert!(outcome.starts_with("OUTCOME 1 "), "got: {outcome}");
    assert!(ask("FINISH 1").starts_with("ERR "), "double finish");

    assert_eq!(ask("SHUTDOWN"), "OK shutdown");
    handle.join().expect("server thread");
}
