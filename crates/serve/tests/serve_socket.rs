//! End-to-end: a server under a churn-forcing budget — on a Unix socket
//! or a TCP port, fed per-token or batched — driven through the text
//! protocol must reproduce direct runs byte for byte; with a spill
//! store attached, even across a shutdown/restart. The in-process
//! version of the CI serve smokes.

use oqsc_serve::{
    demo_fleet, direct_outcome_lines, drive_fleet, drive_socket, shutdown_socket, stats_socket,
    DrivePhase, FeedMode, MuxConfig, Server, ServerConfig,
};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

fn socket_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "oqsc-serve-test-{}-{name}.sock",
            std::process::id()
        ))
        .display()
        .to_string()
}

/// The identity tests' churn-forcing sizing.
fn tight_config(threads: usize, live_bytes_budget: usize) -> ServerConfig {
    ServerConfig {
        threads,
        mux: MuxConfig {
            live_bytes_budget,
            warm_bytes_budget: 1 << 30,
            shards: 4,
            ..MuxConfig::default()
        },
        ..ServerConfig::default()
    }
}

#[test]
fn served_fleet_matches_direct_runs_byte_for_byte() {
    const SEED: u64 = 0xD21F7; // deterministic driver seed
    let path = socket_path("identity");
    // Tight enough that the demo fleet churns through the warm tier
    // constantly.
    let server = Server::bind(&path, tight_config(3, 2 << 10)).expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let served = drive_socket(&path, SEED).expect("drive");
    let direct = direct_outcome_lines(SEED);
    assert_eq!(served, direct);

    let stats = stats_socket(&path).expect("stats");
    assert!(stats.starts_with("STATS "), "bad stats line: {stats}");

    shutdown_socket(&path).expect("shutdown");
    let final_stats = handle.join().expect("server thread");
    assert_eq!(final_stats.finished, direct.len() as u64);
    assert!(
        !std::path::Path::new(&path).exists(),
        "socket file should be removed on shutdown"
    );
}

/// The same identity over TCP: an address with a `:` binds a TCP
/// listener (port 0 → kernel-chosen), and the transcript is identical
/// to the Unix-socket one because the protocol never sees the
/// transport.
#[test]
fn tcp_served_fleet_matches_direct_runs_byte_for_byte() {
    const SEED: u64 = 0xD21F7;
    let server = Server::bind("127.0.0.1:0", tight_config(3, 2 << 10)).expect("bind tcp");
    let addr = server.local_addr();
    assert!(addr.contains(':'), "dialable TCP address, got {addr}");
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let served = drive_socket(&addr, SEED).expect("drive over tcp");
    assert_eq!(served, direct_outcome_lines(SEED));

    shutdown_socket(&addr).expect("shutdown");
    handle.join().expect("server thread");
}

/// Batched `FEEDS` driving is byte-identical to per-token `FEED`
/// driving across the budget × thread grid — including budget 0, where
/// every batch straddles a full evict + rehydrate cycle.
#[test]
fn batched_feeds_match_per_token_feeds_over_the_socket() {
    const SEED: u64 = 0xD21F7;
    let direct = direct_outcome_lines(SEED);
    for live_budget in [0usize, 4 << 10] {
        for threads in [1usize, 8] {
            let mut transcripts = Vec::new();
            for mode in [FeedMode::Chunks, FeedMode::Batched] {
                let path = socket_path(&format!("batched-{live_budget}-{threads}-{mode:?}"));
                let server = Server::bind(&path, tight_config(threads, live_budget)).expect("bind");
                let handle = std::thread::spawn(move || server.run().expect("serve"));
                let served = drive_fleet(&path, SEED, mode, DrivePhase::Full).expect("drive fleet");
                shutdown_socket(&path).expect("shutdown");
                handle.join().expect("server thread");
                transcripts.push(served);
            }
            assert_eq!(
                transcripts[0], direct,
                "per-token FEED, budget {live_budget}, threads {threads}"
            );
            assert_eq!(
                transcripts[1], direct,
                "batched FEEDS, budget {live_budget}, threads {threads}"
            );
        }
    }
}

/// With a spill store attached, a graceful shutdown mid-stream loses
/// nothing: a restarted server on the same store hydrates every session
/// at its exact position, and the finished outcomes still match direct
/// runs byte for byte.
#[test]
fn restart_from_spill_resumes_mid_stream_sessions() {
    const SEED: u64 = 0xD21F7;
    let path = socket_path("restart");
    let store = std::env::temp_dir().join(format!(
        "oqsc-serve-test-{}-restart.cps",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&store);
    let config = ServerConfig {
        spill_store: Some(store.clone()),
        ..tight_config(3, 2 << 10)
    };

    let server = Server::bind(&path, config.clone()).expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let none =
        drive_fleet(&path, SEED, FeedMode::Batched, DrivePhase::FirstHalf).expect("first half");
    assert!(none.is_empty(), "FirstHalf leaves every session mid-stream");
    shutdown_socket(&path).expect("shutdown");
    handle.join().expect("server thread");

    let server = Server::bind(&path, config).expect("rebind on the same store");
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let served =
        drive_fleet(&path, SEED, FeedMode::Batched, DrivePhase::SecondHalf).expect("second half");
    assert_eq!(served, direct_outcome_lines(SEED));
    shutdown_socket(&path).expect("shutdown");
    let stats = handle.join().expect("server thread");
    assert!(
        stats.spill_hydrations > 0,
        "second-half sessions must have hydrated from the store: {stats:?}"
    );
    let _ = std::fs::remove_file(&store);
}

/// A client writing one byte every 35 ms crosses the server's
/// (non-default) 25 ms read timeout in the middle of every single
/// request line. The already-read prefix must survive each timeout —
/// before the fix, the handler cleared its buffer at the top of the
/// loop and such a client saw its requests truncated into garbage.
#[test]
fn byte_at_a_time_slow_writer_is_never_corrupted() {
    const SEED: u64 = 0xD21F7; // same fleet as the identity test
    let path = socket_path("slow-writer");
    let config = ServerConfig {
        // Pin a non-default cadence: the timeout is configuration, not
        // a constant, and the partial-line guarantee must hold at any
        // value.
        read_timeout: Duration::from_millis(25),
        ..ServerConfig::default()
    };
    let server = Server::bind(&path, config).expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let mut writer = UnixStream::connect(&path).expect("connect");
    let mut reader = BufReader::new(writer.try_clone().expect("clone"));
    let mut trickle = |line: &str| -> String {
        for byte in format!("{line}\n").bytes() {
            writer.write_all(&[byte]).expect("write byte");
            writer.flush().expect("flush");
            // Longer than the server's 25 ms poll: every request line is
            // interrupted by several read timeouts mid-bytes.
            std::thread::sleep(Duration::from_millis(35));
        }
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        response.trim().to_string()
    };

    let (id, kind, seed, word) = demo_fleet(SEED).into_iter().next().expect("fleet");
    let open = trickle(&format!("OPEN {id} {} {seed}", kind.name()));
    assert_eq!(open, format!("OK {id} 0"));
    let text = oqsc_lang::token::to_string(&word);
    let feed = trickle(&format!("FEED {id} {text}"));
    assert!(feed.starts_with(&format!("OK {id} ")), "got: {feed}");
    let outcome = trickle(&format!("FINISH {id}"));
    assert_eq!(
        outcome,
        direct_outcome_lines(SEED)[id as usize],
        "a 1-byte-per-35ms client must see the exact direct-run outcome"
    );

    shutdown_socket(&path).expect("shutdown");
    handle.join().expect("server thread");
}

/// Binding replaces a *stale* socket file (dead server) and only a
/// stale one: a live server is refused, and a path that is not a socket
/// is never touched.
#[test]
fn bind_replaces_stale_sockets_but_refuses_live_servers_and_files() {
    // Stale: a socket file whose listener is gone accepts the bind.
    let stale = socket_path("stale");
    let dead = UnixListener::bind(&stale).expect("first bind");
    drop(dead); // closes the fd, leaves the socket file behind
    assert!(
        std::path::Path::new(&stale).exists(),
        "dead listener leaves its socket file"
    );
    let server = Server::bind(&stale, ServerConfig::default()).expect("stale file is replaced");
    drop(server);
    let _ = std::fs::remove_file(&stale);

    // Live: a served socket is refused instead of clobbered.
    let live = socket_path("live");
    let server = Server::bind(&live, ServerConfig::default()).expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let err = match Server::bind(&live, ServerConfig::default()) {
        Ok(_) => panic!("live server must be refused"),
        Err(err) => err,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse, "{err}");
    // The refusal must not have unlinked the live server's socket.
    shutdown_socket(&live).expect("still serving after refused bind");
    handle.join().expect("server thread");

    // Not a socket: refused and preserved.
    let file = socket_path("plain-file");
    std::fs::write(&file, b"precious").expect("write");
    let err = match Server::bind(&file, ServerConfig::default()) {
        Ok(_) => panic!("regular file must be refused"),
        Err(err) => err,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists, "{err}");
    assert_eq!(std::fs::read(&file).expect("still there"), b"precious");
    let _ = std::fs::remove_file(&file);
}

#[test]
fn protocol_errors_leave_the_connection_usable() {
    let path = socket_path("errors");
    let server = Server::bind(&path, ServerConfig::default()).expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let mut writer = UnixStream::connect(&path).expect("connect");
    let mut reader = BufReader::new(writer.try_clone().expect("clone"));
    let mut ask = |line: &str| -> String {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        writer.flush().expect("flush");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        response.trim().to_string()
    };

    assert!(ask("NONSENSE").starts_with("ERR "));
    assert!(ask("FEED 99 1#0").starts_with("ERR unknown session"));
    assert_eq!(ask("OPEN 1 format 0"), "OK 1 0");
    assert!(ask("OPEN 1 format 0").starts_with("ERR "), "duplicate open");
    assert_eq!(ask("FEED 1 1#01"), "OK 1 4");
    assert!(ask("FEEDS 1 3 01").starts_with("ERR "), "truncated batch");
    assert_eq!(ask("FEEDS 1 2 1# 01"), "OK 1 8", "batched feed");
    let outcome = ask("FINISH 1");
    assert!(outcome.starts_with("OUTCOME 1 "), "got: {outcome}");
    assert!(ask("FINISH 1").starts_with("ERR "), "double finish");

    assert_eq!(ask("SHUTDOWN"), "OK shutdown");
    handle.join().expect("server thread");
}
