//! End-to-end: a Unix-socket server under a churn-forcing budget, driven
//! through the text protocol, must reproduce direct runs byte for byte —
//! the in-process version of the CI serve smoke.

use oqsc_serve::{
    direct_outcome_lines, drive_socket, shutdown_socket, stats_socket, MuxConfig, Server,
    ServerConfig,
};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;

fn socket_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "oqsc-serve-test-{}-{name}.sock",
        std::process::id()
    ))
}

#[test]
fn served_fleet_matches_direct_runs_byte_for_byte() {
    const SEED: u64 = 0xD21F7; // deterministic driver seed
    let path = socket_path("identity");
    let server = Server::bind(
        &path,
        ServerConfig {
            threads: 3,
            mux: MuxConfig {
                // Tight enough that the demo fleet churns through the
                // warm tier constantly.
                live_bytes_budget: 2 << 10,
                warm_bytes_budget: 1 << 30,
                shards: 4,
            },
        },
    )
    .expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let served = drive_socket(&path, SEED).expect("drive");
    let direct = direct_outcome_lines(SEED);
    assert_eq!(served, direct);

    let stats = stats_socket(&path).expect("stats");
    assert!(stats.starts_with("STATS "), "bad stats line: {stats}");

    shutdown_socket(&path).expect("shutdown");
    let final_stats = handle.join().expect("server thread");
    assert_eq!(final_stats.finished, direct.len() as u64);
    assert!(!path.exists(), "socket file should be removed on shutdown");
}

#[test]
fn protocol_errors_leave_the_connection_usable() {
    let path = socket_path("errors");
    let server = Server::bind(&path, ServerConfig::default()).expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let mut writer = UnixStream::connect(&path).expect("connect");
    let mut reader = BufReader::new(writer.try_clone().expect("clone"));
    let mut ask = |line: &str| -> String {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        writer.flush().expect("flush");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        response.trim().to_string()
    };

    assert!(ask("NONSENSE").starts_with("ERR "));
    assert!(ask("FEED 99 1#0").starts_with("ERR unknown session"));
    assert_eq!(ask("OPEN 1 format 0"), "OK 1 0");
    assert!(ask("OPEN 1 format 0").starts_with("ERR "), "duplicate open");
    assert_eq!(ask("FEED 1 1#01"), "OK 1 4");
    let outcome = ask("FINISH 1");
    assert!(outcome.starts_with("OUTCOME 1 "), "got: {outcome}");
    assert!(ask("FINISH 1").starts_with("ERR "), "double finish");

    assert_eq!(ask("SHUTDOWN"), "OK shutdown");
    handle.join().expect("server thread");
}
