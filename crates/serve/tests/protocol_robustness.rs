//! Hostile-line battery: every malformed input — overlong lines,
//! non-UTF8 bytes, truncated `FEEDS` counts, absurd declared counts —
//! earns a typed `ERR` line and leaves the connection usable. Never a
//! panic, never a dropped connection, never an allocation proportional
//! to what the client *claims* to be sending.

use oqsc_serve::{Server, ServerConfig, MAX_LINE_BYTES};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;

fn socket_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "oqsc-robust-test-{}-{name}.sock",
            std::process::id()
        ))
        .display()
        .to_string()
}

struct RawClient {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl RawClient {
    fn connect(path: &str) -> RawClient {
        let writer = UnixStream::connect(path).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        RawClient { writer, reader }
    }

    /// Sends raw bytes (not necessarily a valid line) and reads one
    /// response line.
    fn send_raw(&mut self, bytes: &[u8]) -> String {
        self.writer.write_all(bytes).expect("write");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read");
        assert!(
            response.ends_with('\n'),
            "server must answer a full line, got {response:?}"
        );
        response.trim().to_string()
    }

    fn ask(&mut self, line: &str) -> String {
        self.send_raw(format!("{line}\n").as_bytes())
    }
}

#[test]
fn hostile_lines_get_typed_errors_and_the_connection_survives() {
    let path = socket_path("battery");
    let server = Server::bind(&path, ServerConfig::default()).expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let mut client = RawClient::connect(&path);

    // A line crossing the cap without a newline: one bounded ERR once
    // the newline finally arrives, then business as usual.
    let mut overlong = vec![b'x'; MAX_LINE_BYTES + 4096];
    overlong.push(b'\n');
    let response = client.send_raw(&overlong);
    assert!(response.starts_with("ERR line too long"), "got: {response}");

    // Non-UTF8 bytes in an otherwise well-framed line.
    let response = client.send_raw(b"FEED 1 \xff\xfe\x80\n");
    assert!(
        response.starts_with("ERR request is not valid UTF-8"),
        "got: {response}"
    );

    // Truncated FEEDS batches: fewer chunks than declared.
    for bad in [
        "FEEDS 1 2 01",
        "FEEDS 1 1",
        // A count chosen to bankrupt a server that preallocates by it.
        "FEEDS 1 18446744073709551615 01",
        "FEEDS 1 9999999999 01 10",
        // Excess chunks and garbage counts.
        "FEEDS 1 1 01 10",
        "FEEDS 1 -3 01",
        "FEEDS 1 zz 01",
        // Garbage words inside a well-counted batch.
        "FEEDS 1 2 01 0x2",
    ] {
        let response = client.ask(bad);
        assert!(response.starts_with("ERR "), "{bad:?} got: {response}");
    }

    // Assorted malformed frames.
    for bad in [
        "OPEN 1 format",
        "OPEN 99999999999999999999999999 format 0",
        "FEED",
        "FINISH one",
        "STATS now",
        "\u{1F980} 1", // a verb from outside ASCII entirely
    ] {
        let response = client.ask(bad);
        assert!(response.starts_with("ERR "), "{bad:?} got: {response}");
    }

    // After all of that abuse, the same connection still serves a
    // session end to end.
    assert_eq!(client.ask("OPEN 5 format 0"), "OK 5 0");
    assert_eq!(client.ask("FEEDS 5 2 1# 01"), "OK 5 4");
    let outcome = client.ask("FINISH 5");
    assert!(outcome.starts_with("OUTCOME 5 "), "got: {outcome}");

    assert_eq!(client.ask("SHUTDOWN"), "OK shutdown");
    handle.join().expect("server thread");
}

/// Two overlong lines back to back, with a pipelined valid request
/// behind them: the resync must swallow exactly one line per ERR.
#[test]
fn oversized_line_resync_is_exact() {
    let path = socket_path("resync");
    let server = Server::bind(&path, ServerConfig::default()).expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let mut client = RawClient::connect(&path);

    let mut blob = Vec::new();
    for _ in 0..2 {
        blob.extend_from_slice(&vec![b'y'; MAX_LINE_BYTES + 100]);
        blob.push(b'\n');
    }
    blob.extend_from_slice(b"OPEN 1 format 0\n");
    let first = client.send_raw(&blob);
    assert!(first.starts_with("ERR line too long"), "got: {first}");
    let mut next = String::new();
    client.reader.read_line(&mut next).expect("second response");
    assert!(
        next.starts_with("ERR line too long"),
        "second oversized line, got: {next}"
    );
    let mut open = String::new();
    client.reader.read_line(&mut open).expect("third response");
    assert_eq!(open.trim(), "OK 1 0", "the valid request behind the junk");

    assert_eq!(client.ask("SHUTDOWN"), "OK shutdown");
    handle.join().expect("server thread");
}
