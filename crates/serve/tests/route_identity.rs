//! The router's contract, pinned in-process: a fleet driven through a
//! consistent-hash router over 1, 2 or 4 backend engines produces
//! byte-identical per-session transcripts — the same `OUTCOME` lines a
//! single direct engine (and a direct run) produces. Plus the fan-out
//! verbs: summed `STATS`, broadcast `SHUTDOWN`.

use oqsc_serve::{
    direct_outcome_lines, drive_fleet, parse_stats_line, shutdown_socket, stats_socket, DrivePhase,
    FeedMode, MuxConfig, Router, RouterConfig, Server, ServerConfig,
};

fn socket_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "oqsc-route-test-{}-{name}.sock",
            std::process::id()
        ))
        .display()
        .to_string()
}

fn tight_config() -> ServerConfig {
    ServerConfig {
        threads: 2,
        mux: MuxConfig {
            live_bytes_budget: 2 << 10,
            warm_bytes_budget: 1 << 30,
            shards: 4,
            ..MuxConfig::default()
        },
        ..ServerConfig::default()
    }
}

#[test]
fn routed_fleets_match_direct_runs_at_any_engine_count() {
    const SEED: u64 = 0xD21F7;
    let direct = direct_outcome_lines(SEED);
    // Session ids are single-use per engine, so each scenario gets a
    // fresh stack; between them the grid covers 1/2/4 engines and both
    // feed shapes.
    for (scenario, (engine_count, mode)) in [
        (1usize, FeedMode::Chunks),
        (2, FeedMode::Chunks),
        (2, FeedMode::Batched),
        (4, FeedMode::Batched),
    ]
    .into_iter()
    .enumerate()
    {
        let mut engine_addrs = Vec::new();
        let mut engine_handles = Vec::new();
        for e in 0..engine_count {
            let path = socket_path(&format!("eng-{scenario}-{e}"));
            let server = Server::bind(&path, tight_config()).expect("bind engine");
            engine_addrs.push(path);
            engine_handles.push(std::thread::spawn(move || server.run().expect("engine")));
        }
        let front = socket_path(&format!("front-{scenario}"));
        let router = Router::bind(&front, engine_addrs.clone(), RouterConfig::default())
            .expect("bind router");
        let router_handle = std::thread::spawn(move || router.run().expect("router"));

        let served = drive_fleet(&front, SEED, mode, DrivePhase::Full).expect("drive");
        assert_eq!(served, direct, "{engine_count} engines, {mode:?}");

        // Routed STATS is the field-wise sum over the fleet, spread
        // across engines.
        let stats = parse_stats_line(&stats_socket(&front).expect("stats")).expect("parse");
        assert_eq!(stats.finished, direct.len() as u64);
        if engine_count > 1 {
            let per_engine: Vec<u64> = engine_addrs
                .iter()
                .map(|addr| {
                    parse_stats_line(&stats_socket(addr).expect("engine stats"))
                        .expect("parse")
                        .finished
                })
                .collect();
            assert_eq!(per_engine.iter().sum::<u64>(), stats.finished);
            assert!(
                per_engine.iter().filter(|&&n| n > 0).count() > 1,
                "sessions must actually spread: {per_engine:?}"
            );
        }

        // One SHUTDOWN at the router drains every engine behind it.
        shutdown_socket(&front).expect("broadcast shutdown");
        router_handle.join().expect("router thread");
        for handle in engine_handles {
            handle.join().expect("engine thread");
        }
    }
}
