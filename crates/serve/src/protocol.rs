//! The line-oriented serving protocol.
//!
//! Same style as the worker pool's `OUTCOME` protocol: one request per
//! line, space-separated integer-exact fields, one response line per
//! request. Words travel in the repo's `0`/`1`/`#` surface syntax.
//!
//! ```text
//! -> OPEN <id> <kind> <seed>        <- OK <id> 0
//! -> FEED <id> <word>               <- OK <id> <position>
//! -> FINISH <id>                    <- OUTCOME <id> <accept> <bits> <qubits> <amplitudes>
//! -> STATS                          <- STATS <opened> <finished> <tokens> <live> <peak_live>
//!                                            <warm> <evictions> <hydrations> <spills>
//!                                            <spill_hydrations>
//! -> SHUTDOWN                       <- OK shutdown
//! ```
//!
//! Any failure answers `ERR <message>` and leaves the connection usable.
//! `<kind>` is a [`DeciderKind`] name; `<seed>` deterministically builds
//! the decider, so a served session is exactly reproducible offline.

use crate::catalog::DeciderKind;
use crate::mux::MuxStats;
use oqsc_lang::Sym;
use oqsc_machine::RunOutcome;

/// One parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `OPEN <id> <kind> <seed>`
    Open {
        /// Session id (single-use per server).
        id: u64,
        /// Catalog kind to build.
        kind: DeciderKind,
        /// Constructor seed.
        seed: u64,
    },
    /// `FEED <id> <word>`
    Feed {
        /// Session id.
        id: u64,
        /// Tokens to feed, in stream order.
        word: Vec<Sym>,
    },
    /// `FINISH <id>`
    Finish {
        /// Session id.
        id: u64,
    },
    /// `STATS`
    Stats,
    /// `SHUTDOWN`
    Shutdown,
}

fn parse_u64(what: &str, raw: Option<&str>) -> Result<u64, String> {
    raw.and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("bad {what}"))
}

/// Parses one request line. Errors are protocol-level messages suitable
/// for an `ERR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut parts = line.split_whitespace();
    let verb = parts.next().ok_or_else(|| "empty request".to_string())?;
    let req = match verb {
        "OPEN" => {
            let id = parse_u64("id", parts.next())?;
            let kind = parts
                .next()
                .and_then(DeciderKind::from_name)
                .ok_or_else(|| "bad kind".to_string())?;
            let seed = parse_u64("seed", parts.next())?;
            Request::Open { id, kind, seed }
        }
        "FEED" => {
            let id = parse_u64("id", parts.next())?;
            let word = parts
                .next()
                .and_then(oqsc_lang::token::from_str)
                .ok_or_else(|| "bad word (expected 0/1/# tokens)".to_string())?;
            Request::Feed { id, word }
        }
        "FINISH" => Request::Finish {
            id: parse_u64("id", parts.next())?,
        },
        "STATS" => Request::Stats,
        "SHUTDOWN" => Request::Shutdown,
        other => return Err(format!("unknown verb {other}")),
    };
    if parts.next().is_some() {
        return Err(format!("trailing fields after {verb}"));
    }
    Ok(req)
}

/// Renders the `FINISH` response: verdict + full metering, all integers,
/// so `cmp` against a direct run is byte-exact.
pub fn outcome_line(id: u64, out: &RunOutcome) -> String {
    format!(
        "OUTCOME {id} {} {} {} {}",
        u8::from(out.accept),
        out.classical_bits,
        out.peak_qubits,
        out.peak_amplitudes
    )
}

/// Parses an [`outcome_line`] back into `(id, outcome)`.
pub fn parse_outcome_line(line: &str) -> Option<(u64, RunOutcome)> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some("OUTCOME") {
        return None;
    }
    let id = parts.next()?.parse().ok()?;
    let accept = match parts.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let classical_bits = parts.next()?.parse().ok()?;
    let peak_qubits = parts.next()?.parse().ok()?;
    let peak_amplitudes = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((
        id,
        RunOutcome {
            accept,
            classical_bits,
            peak_qubits,
            peak_amplitudes,
        },
    ))
}

/// Renders the `STATS` response.
pub fn stats_line(s: &MuxStats) -> String {
    format!(
        "STATS {} {} {} {} {} {} {} {} {} {}",
        s.opened,
        s.finished,
        s.tokens,
        s.live,
        s.peak_live,
        s.warm,
        s.evictions,
        s.hydrations,
        s.spills,
        s.spill_hydrations
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_reject() {
        assert_eq!(
            parse_request("OPEN 7 complement-dense 42"),
            Ok(Request::Open {
                id: 7,
                kind: DeciderKind::ComplementDense,
                seed: 42
            })
        );
        assert_eq!(
            parse_request("FEED 7 1#01"),
            Ok(Request::Feed {
                id: 7,
                word: oqsc_lang::token::from_str("1#01").expect("syms")
            })
        );
        assert_eq!(parse_request("FINISH 7"), Ok(Request::Finish { id: 7 }));
        assert_eq!(parse_request("STATS"), Ok(Request::Stats));
        assert_eq!(parse_request("SHUTDOWN"), Ok(Request::Shutdown));
        for bad in [
            "",
            "NOPE",
            "OPEN x complement-dense 1",
            "OPEN 1 no-such-kind 1",
            "OPEN 1 format",
            "FEED 1 012",
            "FEED 1",
            "FINISH",
            "STATS extra",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn outcome_lines_round_trip() {
        let out = RunOutcome {
            accept: true,
            classical_bits: 17,
            peak_qubits: 4,
            peak_amplitudes: 16,
        };
        let line = outcome_line(9, &out);
        assert_eq!(line, "OUTCOME 9 1 17 4 16");
        assert_eq!(parse_outcome_line(&line), Some((9, out)));
        assert_eq!(parse_outcome_line("OUTCOME 9 2 0 0 0"), None);
        assert_eq!(parse_outcome_line("OK 9"), None);
    }
}
