//! The line-oriented serving protocol.
//!
//! Same style as the worker pool's `OUTCOME` protocol: one request per
//! line, space-separated integer-exact fields, one response line per
//! request. Words travel in the repo's `0`/`1`/`#` surface syntax.
//!
//! ```text
//! -> OPEN <id> <kind> <seed>        <- OK <id> 0
//! -> FEED <id> <word>               <- OK <id> <position>
//! -> FEEDS <id> <n> <w1> … <wn>     <- OK <id> <position>
//! -> FINISH <id>                    <- OUTCOME <id> <accept> <bits> <qubits> <amplitudes>
//! -> STATS                          <- STATS <opened> <finished> <tokens> <live> <peak_live>
//!                                            <warm> <evictions> <hydrations> <spills>
//!                                            <spill_hydrations>
//! -> SHUTDOWN                       <- OK shutdown
//! ```
//!
//! `FEEDS` is the batched form of `FEED`: `<n>` word chunks land on the
//! session in one request, one budget-enforcement pass, and one response
//! line — the per-token round trip is the serving hot path's dominant
//! cost, so batch when you can. The declared count must match the chunks
//! actually present; a hostile `<n>` never preallocates.
//!
//! The protocol is transport-agnostic: the same lines flow over a Unix
//! socket or TCP (see [`crate::transport`]).
//!
//! Any failure answers `ERR <message>` and leaves the connection usable.
//! `<kind>` is a [`DeciderKind`] name; `<seed>` deterministically builds
//! the decider, so a served session is exactly reproducible offline.

use crate::catalog::DeciderKind;
use crate::mux::MuxStats;
use oqsc_lang::Sym;
use oqsc_machine::RunOutcome;

/// One parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `OPEN <id> <kind> <seed>`
    Open {
        /// Session id (single-use per server).
        id: u64,
        /// Catalog kind to build.
        kind: DeciderKind,
        /// Constructor seed.
        seed: u64,
    },
    /// `FEED <id> <word>`
    Feed {
        /// Session id.
        id: u64,
        /// Tokens to feed, in stream order.
        word: Vec<Sym>,
    },
    /// `FEEDS <id> <n> <w1> … <wn>`
    Feeds {
        /// Session id.
        id: u64,
        /// The batched word chunks, in stream order.
        words: Vec<Vec<Sym>>,
    },
    /// `FINISH <id>`
    Finish {
        /// Session id.
        id: u64,
    },
    /// `STATS`
    Stats,
    /// `SHUTDOWN`
    Shutdown,
}

fn parse_u64(what: &str, raw: Option<&str>) -> Result<u64, String> {
    raw.and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("bad {what}"))
}

/// Parses one request line. Errors are protocol-level messages suitable
/// for an `ERR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut parts = line.split_whitespace();
    let verb = parts.next().ok_or_else(|| "empty request".to_string())?;
    let req = match verb {
        "OPEN" => {
            let id = parse_u64("id", parts.next())?;
            let kind = parts
                .next()
                .and_then(DeciderKind::from_name)
                .ok_or_else(|| "bad kind".to_string())?;
            let seed = parse_u64("seed", parts.next())?;
            Request::Open { id, kind, seed }
        }
        "FEED" => {
            let id = parse_u64("id", parts.next())?;
            let word = parts
                .next()
                .and_then(oqsc_lang::token::from_str)
                .ok_or_else(|| "bad word (expected 0/1/# tokens)".to_string())?;
            Request::Feed { id, word }
        }
        "FEEDS" => {
            let id = parse_u64("id", parts.next())?;
            let n = parse_u64("count", parts.next())?;
            // Pull exactly `n` chunks off the line. The vector grows by
            // what actually arrives, never by the declared count, so a
            // hostile `n` costs nothing but this loop's first miss.
            let mut words = Vec::new();
            for _ in 0..n {
                let word = parts
                    .next()
                    .ok_or_else(|| {
                        format!("truncated FEEDS batch: declared {n}, got {}", words.len())
                    })
                    .and_then(|raw| {
                        oqsc_lang::token::from_str(raw)
                            .ok_or_else(|| "bad word (expected 0/1/# tokens)".to_string())
                    })?;
                words.push(word);
            }
            Request::Feeds { id, words }
        }
        "FINISH" => Request::Finish {
            id: parse_u64("id", parts.next())?,
        },
        "STATS" => Request::Stats,
        "SHUTDOWN" => Request::Shutdown,
        other => return Err(format!("unknown verb {other}")),
    };
    if parts.next().is_some() {
        return Err(format!("trailing fields after {verb}"));
    }
    Ok(req)
}

/// Renders the `FINISH` response: verdict + full metering, all integers,
/// so `cmp` against a direct run is byte-exact.
pub fn outcome_line(id: u64, out: &RunOutcome) -> String {
    format!(
        "OUTCOME {id} {} {} {} {}",
        u8::from(out.accept),
        out.classical_bits,
        out.peak_qubits,
        out.peak_amplitudes
    )
}

/// Parses an [`outcome_line`] back into `(id, outcome)`.
pub fn parse_outcome_line(line: &str) -> Option<(u64, RunOutcome)> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some("OUTCOME") {
        return None;
    }
    let id = parts.next()?.parse().ok()?;
    let accept = match parts.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let classical_bits = parts.next()?.parse().ok()?;
    let peak_qubits = parts.next()?.parse().ok()?;
    let peak_amplitudes = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((
        id,
        RunOutcome {
            accept,
            classical_bits,
            peak_qubits,
            peak_amplitudes,
        },
    ))
}

/// Renders one fleet-qualified outcome line — the worker pool's
/// reporting protocol, reused verbatim by the distributed sweep fabric:
/// `OUTCOME <fleet> <index> <accept> <bits> <qubits> <amplitudes>`.
/// All integers, so the text round trip is exact and merged tables are
/// byte-identical to in-process ones.
pub fn fleet_outcome_line(fleet: &str, index: u64, out: &RunOutcome) -> String {
    format!(
        "OUTCOME {fleet} {index} {} {} {} {}",
        u8::from(out.accept),
        out.classical_bits,
        out.peak_qubits,
        out.peak_amplitudes
    )
}

/// Parses a [`fleet_outcome_line`]. Errors carry the offending line so
/// both the process pool and the fabric can surface it verbatim.
pub fn parse_fleet_outcome_line(line: &str) -> Result<(String, u64, RunOutcome), String> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some("OUTCOME") {
        return Err(format!("malformed OUTCOME line: {line:?}"));
    }
    let fleet = parts
        .next()
        .ok_or_else(|| format!("malformed OUTCOME line: {line:?}"))?
        .to_string();
    let mut next_num = |what: &str| -> Result<u64, String> {
        parts
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| format!("bad {what} in OUTCOME line: {line:?}"))
    };
    let index = next_num("index")?;
    let accept = match next_num("accept flag")? {
        0 => false,
        1 => true,
        _ => return Err(format!("malformed OUTCOME line: {line:?}")),
    };
    let outcome = RunOutcome {
        accept,
        classical_bits: next_num("classical bits")? as usize,
        peak_qubits: next_num("peak qubits")? as usize,
        peak_amplitudes: next_num("peak amplitudes")? as usize,
    };
    if parts.next().is_some() {
        return Err(format!("malformed OUTCOME line: {line:?}"));
    }
    Ok((fleet, index, outcome))
}

/// One parsed fabric request line (worker → coordinator).
///
/// The distributed sweep fabric speaks the worker pool's line-oriented
/// `OUTCOME` protocol, extended with lease-management verbs:
///
/// ```text
/// -> LEASE <worker> <sweep> <k_max> <trials>  <- LEASE <lease> <fleet> <start> <end>
///                                             <- WAIT <millis> | FINISHED
/// -> RENEW <lease>                            <- OK <lease> | EXPIRED <lease>
/// -> HEARTBEAT <worker>                       <- OK <worker>
/// -> OUTCOME <fleet> <index> <a> <b> <q> <m>  <- OK <index>
/// -> DONE <lease>                             <- OK <lease> | EXPIRED <lease>
/// ```
///
/// `LEASE` carries the worker's sweep identity (`<trials>` is `0` for
/// sweeps without a Monte-Carlo fleet) so a worker configured for a
/// different sweep is refused with `ERR` instead of silently producing
/// outcomes for the wrong instances. Granted ranges are half-open:
/// `start <= index < end`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FabricRequest {
    /// `LEASE <worker> <sweep> <k_max> <trials>` — ask for a range of
    /// instances to run, declaring the sweep the worker was built for.
    Lease {
        /// The requesting worker's id.
        worker: u64,
        /// Sweep name the worker is configured for (`e6`/`f1`/…).
        sweep: String,
        /// The worker's `--k-max` (must match the coordinator's).
        k_max: u32,
        /// The worker's Monte-Carlo fleet size, `0` when the sweep has
        /// none.
        trials: u64,
    },
    /// `RENEW <lease>` — push one lease's heartbeat deadline out.
    Renew {
        /// The lease to renew.
        lease: u64,
    },
    /// `HEARTBEAT <worker>` — worker-level liveness: renews every lease
    /// the worker currently holds (sent on a side connection so a long
    /// compute never starves the deadline).
    Heartbeat {
        /// The beating worker's id.
        worker: u64,
    },
    /// One [`fleet_outcome_line`]: an instance's result. Idempotent —
    /// re-executed instances are pure functions of their index, so the
    /// coordinator tolerates identical duplicates from re-leased ranges.
    Outcome {
        /// Fleet the instance belongs to.
        fleet: String,
        /// Global instance index within the fleet.
        index: u64,
        /// The instance's verdict and metering.
        outcome: RunOutcome,
    },
    /// `DONE <lease>` — every index of the leased range has been
    /// reported; the coordinator may retire the range.
    Done {
        /// The completed lease.
        lease: u64,
    },
}

/// One rendered fabric response line (coordinator → worker).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FabricResponse {
    /// `LEASE <lease> <fleet> <start> <end>` — a granted half-open
    /// instance range.
    Grant {
        /// The new lease's id.
        lease: u64,
        /// Fleet the range belongs to.
        fleet: String,
        /// First instance index of the range.
        start: u64,
        /// One past the last instance index.
        end: u64,
    },
    /// `WAIT <millis>` — nothing leasable right now; ask again.
    Wait {
        /// Suggested back-off before the next `LEASE`.
        millis: u64,
    },
    /// `FINISHED` — the sweep is complete; the worker can exit.
    Finished,
    /// `OK <token>` — acknowledgement (the renewed lease, the beating
    /// worker, the recorded index, or the retired lease).
    Ok {
        /// Echo of the acknowledged id.
        token: u64,
    },
    /// `EXPIRED <lease>` — the lease lapsed (or was never granted); the
    /// range has been re-leased, abandon it.
    Expired {
        /// The dead lease.
        lease: u64,
    },
}

/// Renders a [`FabricRequest`] as its wire line.
pub fn fabric_request_line(req: &FabricRequest) -> String {
    match req {
        FabricRequest::Lease {
            worker,
            sweep,
            k_max,
            trials,
        } => format!("LEASE {worker} {sweep} {k_max} {trials}"),
        FabricRequest::Renew { lease } => format!("RENEW {lease}"),
        FabricRequest::Heartbeat { worker } => format!("HEARTBEAT {worker}"),
        FabricRequest::Outcome {
            fleet,
            index,
            outcome,
        } => fleet_outcome_line(fleet, *index, outcome),
        FabricRequest::Done { lease } => format!("DONE {lease}"),
    }
}

/// Parses one fabric request line. Errors are protocol-level messages
/// suitable for an `ERR` response.
pub fn parse_fabric_request(line: &str) -> Result<FabricRequest, String> {
    let mut parts = line.split_whitespace();
    let verb = parts.next().ok_or_else(|| "empty request".to_string())?;
    let req = match verb {
        "LEASE" => {
            let worker = parse_u64("worker", parts.next())?;
            let sweep = parts
                .next()
                .ok_or_else(|| "bad sweep name".to_string())?
                .to_string();
            let k_max = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| "bad k_max".to_string())?;
            let trials = parse_u64("trials", parts.next())?;
            FabricRequest::Lease {
                worker,
                sweep,
                k_max,
                trials,
            }
        }
        "RENEW" => FabricRequest::Renew {
            lease: parse_u64("lease", parts.next())?,
        },
        "HEARTBEAT" => FabricRequest::Heartbeat {
            worker: parse_u64("worker", parts.next())?,
        },
        "OUTCOME" => {
            let (fleet, index, outcome) = parse_fleet_outcome_line(line)?;
            return Ok(FabricRequest::Outcome {
                fleet,
                index,
                outcome,
            });
        }
        "DONE" => FabricRequest::Done {
            lease: parse_u64("lease", parts.next())?,
        },
        other => return Err(format!("unknown fabric verb {other}")),
    };
    if parts.next().is_some() {
        return Err(format!("trailing fields after {verb}"));
    }
    Ok(req)
}

/// Renders a [`FabricResponse`] as its wire line.
pub fn fabric_response_line(resp: &FabricResponse) -> String {
    match resp {
        FabricResponse::Grant {
            lease,
            fleet,
            start,
            end,
        } => format!("LEASE {lease} {fleet} {start} {end}"),
        FabricResponse::Wait { millis } => format!("WAIT {millis}"),
        FabricResponse::Finished => "FINISHED".to_string(),
        FabricResponse::Ok { token } => format!("OK {token}"),
        FabricResponse::Expired { lease } => format!("EXPIRED {lease}"),
    }
}

/// Parses one fabric response line (the worker side of the exchange).
pub fn parse_fabric_response(line: &str) -> Result<FabricResponse, String> {
    let mut parts = line.split_whitespace();
    let verb = parts.next().ok_or_else(|| "empty response".to_string())?;
    let resp = match verb {
        "LEASE" => {
            let lease = parse_u64("lease", parts.next())?;
            let fleet = parts
                .next()
                .ok_or_else(|| "bad fleet".to_string())?
                .to_string();
            let start = parse_u64("start", parts.next())?;
            let end = parse_u64("end", parts.next())?;
            if start >= end {
                return Err(format!("empty lease range {start}..{end}"));
            }
            FabricResponse::Grant {
                lease,
                fleet,
                start,
                end,
            }
        }
        "WAIT" => FabricResponse::Wait {
            millis: parse_u64("millis", parts.next())?,
        },
        "FINISHED" => FabricResponse::Finished,
        "OK" => FabricResponse::Ok {
            token: parse_u64("token", parts.next())?,
        },
        "EXPIRED" => FabricResponse::Expired {
            lease: parse_u64("lease", parts.next())?,
        },
        other => return Err(format!("unknown fabric response {other}")),
    };
    if parts.next().is_some() {
        return Err(format!("trailing fields after {verb}"));
    }
    Ok(resp)
}

/// Renders a `FEEDS` request line. Every chunk must be non-empty — an
/// empty chunk has no surface form on a whitespace-separated wire (and
/// would be a no-op feed anyway).
pub fn feeds_line(id: u64, chunks: &[Vec<Sym>]) -> String {
    let mut line = format!("FEEDS {id} {}", chunks.len());
    for chunk in chunks {
        debug_assert!(!chunk.is_empty(), "empty chunks are not representable");
        line.push(' ');
        line.push_str(&oqsc_lang::token::to_string(chunk));
    }
    line
}

/// Renders the `STATS` response.
pub fn stats_line(s: &MuxStats) -> String {
    format!(
        "STATS {} {} {} {} {} {} {} {} {} {}",
        s.opened,
        s.finished,
        s.tokens,
        s.live,
        s.peak_live,
        s.warm,
        s.evictions,
        s.hydrations,
        s.spills,
        s.spill_hydrations
    )
}

/// Parses a [`stats_line`] back into a [`MuxStats`]. The wire format
/// carries the ten counter fields only; the byte-occupancy gauges
/// (`live_bytes`/`warm_bytes`) come back zero. Used by the router to
/// sum per-engine stats into one fleet-wide response.
pub fn parse_stats_line(line: &str) -> Result<MuxStats, String> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some("STATS") {
        return Err(format!("malformed STATS line: {line:?}"));
    }
    let mut next_num = |what: &str| -> Result<u64, String> {
        parts
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| format!("bad {what} in STATS line: {line:?}"))
    };
    let stats = MuxStats {
        opened: next_num("opened")?,
        finished: next_num("finished")?,
        tokens: next_num("tokens")?,
        live: next_num("live")?,
        peak_live: next_num("peak_live")?,
        warm: next_num("warm")?,
        live_bytes: 0,
        warm_bytes: 0,
        evictions: next_num("evictions")?,
        hydrations: next_num("hydrations")?,
        spills: next_num("spills")?,
        spill_hydrations: next_num("spill_hydrations")?,
    };
    if parts.next().is_some() {
        return Err(format!("trailing fields in STATS line: {line:?}"));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_reject() {
        assert_eq!(
            parse_request("OPEN 7 complement-dense 42"),
            Ok(Request::Open {
                id: 7,
                kind: DeciderKind::ComplementDense,
                seed: 42
            })
        );
        assert_eq!(
            parse_request("FEED 7 1#01"),
            Ok(Request::Feed {
                id: 7,
                word: oqsc_lang::token::from_str("1#01").expect("syms")
            })
        );
        assert_eq!(parse_request("FINISH 7"), Ok(Request::Finish { id: 7 }));
        assert_eq!(parse_request("STATS"), Ok(Request::Stats));
        assert_eq!(parse_request("SHUTDOWN"), Ok(Request::Shutdown));
        for bad in [
            "",
            "NOPE",
            "OPEN x complement-dense 1",
            "OPEN 1 no-such-kind 1",
            "OPEN 1 format",
            "FEED 1 012",
            "FEED 1",
            "FINISH",
            "STATS extra",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn feeds_requests_round_trip_and_reject() {
        let chunks = vec![
            oqsc_lang::token::from_str("1#0").expect("syms"),
            oqsc_lang::token::from_str("01").expect("syms"),
            oqsc_lang::token::from_str("#").expect("syms"),
        ];
        let line = feeds_line(9, &chunks);
        assert_eq!(line, "FEEDS 9 3 1#0 01 #");
        assert_eq!(
            parse_request(&line),
            Ok(Request::Feeds {
                id: 9,
                words: chunks
            })
        );
        // An empty batch is legal (and a no-op on the session).
        assert_eq!(
            parse_request("FEEDS 9 0"),
            Ok(Request::Feeds {
                id: 9,
                words: vec![]
            })
        );
        for bad in [
            "FEEDS",
            "FEEDS 9",
            "FEEDS x 1 0",
            "FEEDS 9 2 01",                    // truncated: declared 2, got 1
            "FEEDS 9 1 01 11",                 // excess: declared 1, got 2
            "FEEDS 9 18446744073709551615 01", // huge count, tiny batch
            "FEEDS 9 1 012",                   // bad symbol
            "FEEDS 9 zz 01",                   // non-numeric count
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn stats_lines_round_trip() {
        let stats = MuxStats {
            opened: 10,
            finished: 7,
            tokens: 640,
            live: 2,
            peak_live: 5,
            warm: 1,
            live_bytes: 0,
            warm_bytes: 0,
            evictions: 12,
            hydrations: 12,
            spills: 3,
            spill_hydrations: 1,
        };
        let line = stats_line(&stats);
        assert_eq!(line, "STATS 10 7 640 2 5 1 12 12 3 1");
        assert_eq!(parse_stats_line(&line), Ok(stats));
        for bad in ["STATS 1 2 3", "STATS 1 2 3 4 5 6 7 8 9 10 11", "OK 1"] {
            assert!(parse_stats_line(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn outcome_lines_round_trip() {
        let out = RunOutcome {
            accept: true,
            classical_bits: 17,
            peak_qubits: 4,
            peak_amplitudes: 16,
        };
        let line = outcome_line(9, &out);
        assert_eq!(line, "OUTCOME 9 1 17 4 16");
        assert_eq!(parse_outcome_line(&line), Some((9, out)));
        assert_eq!(parse_outcome_line("OUTCOME 9 2 0 0 0"), None);
        assert_eq!(parse_outcome_line("OK 9"), None);
    }

    #[test]
    fn fleet_outcome_lines_round_trip() {
        let out = RunOutcome {
            accept: false,
            classical_bits: 3,
            peak_qubits: 5,
            peak_amplitudes: 32,
        };
        let line = fleet_outcome_line("e6/k4", 11, &out);
        assert_eq!(line, "OUTCOME e6/k4 11 0 3 5 32");
        assert_eq!(
            parse_fleet_outcome_line(&line),
            Ok(("e6/k4".to_string(), 11, out))
        );
        for bad in [
            "OUTCOME",
            "OUTCOME e6/k4",
            "OUTCOME e6/k4 11 2 0 0 0",
            "OUTCOME e6/k4 11 1 0 0 0 extra",
            "OUTCOME e6/k4 x 1 0 0 0",
            "OK e6/k4 11 1 0 0 0",
        ] {
            assert!(
                parse_fleet_outcome_line(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn fabric_requests_round_trip_and_reject() {
        let out = RunOutcome {
            accept: true,
            classical_bits: 1,
            peak_qubits: 2,
            peak_amplitudes: 4,
        };
        let requests = [
            (
                FabricRequest::Lease {
                    worker: 3,
                    sweep: "e6".to_string(),
                    k_max: 4,
                    trials: 0,
                },
                "LEASE 3 e6 4 0",
            ),
            (FabricRequest::Renew { lease: 12 }, "RENEW 12"),
            (FabricRequest::Heartbeat { worker: 3 }, "HEARTBEAT 3"),
            (
                FabricRequest::Outcome {
                    fleet: "f1".to_string(),
                    index: 9,
                    outcome: out,
                },
                "OUTCOME f1 9 1 1 2 4",
            ),
            (FabricRequest::Done { lease: 12 }, "DONE 12"),
        ];
        for (req, wire) in requests {
            assert_eq!(fabric_request_line(&req), wire);
            assert_eq!(parse_fabric_request(wire), Ok(req));
        }
        for bad in [
            "",
            "LEASE",
            "LEASE 3 e6 4",
            "LEASE 3 e6 4 0 extra",
            "RENEW x",
            "HEARTBEAT",
            "DONE",
            "FINISH 1",
            "GRANT 1 e6 0 4",
        ] {
            assert!(
                parse_fabric_request(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn fabric_responses_round_trip_and_reject() {
        let responses = [
            (
                FabricResponse::Grant {
                    lease: 1,
                    fleet: "e6/k2".to_string(),
                    start: 16,
                    end: 32,
                },
                "LEASE 1 e6/k2 16 32",
            ),
            (FabricResponse::Wait { millis: 200 }, "WAIT 200"),
            (FabricResponse::Finished, "FINISHED"),
            (FabricResponse::Ok { token: 7 }, "OK 7"),
            (FabricResponse::Expired { lease: 7 }, "EXPIRED 7"),
        ];
        for (resp, wire) in responses {
            assert_eq!(fabric_response_line(&resp), wire);
            assert_eq!(parse_fabric_response(wire), Ok(resp));
        }
        for bad in [
            "",
            "LEASE 1 e6 4 4", // empty range
            "LEASE 1 e6 8 4", // inverted range
            "LEASE 1 e6 0 4 extra",
            "WAIT",
            "FINISHED now",
            "OK",
            "EXPIRED x",
            "ERR nope",
        ] {
            assert!(
                parse_fabric_response(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }
}
