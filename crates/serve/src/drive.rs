//! The reference driver: a deterministic mixed fleet pushed through the
//! socket protocol, plus the same fleet run directly — the two sides of
//! the CI `cmp`.
//!
//! [`demo_fleet`] builds one session per catalog kind times
//! [`SESSIONS_PER_KIND`] member/non-member words (all derived from one
//! base seed), [`drive_socket`] plays it through a serving socket in
//! interleaved [`FEED_CHUNK`]-token slices, and [`direct_outcome_lines`]
//! computes the identical `OUTCOME` lines with plain
//! [`run_decider_stream`] — no engine, no socket. Byte-equal outputs are
//! the serving rung's end-to-end correctness check.

use crate::catalog::DeciderKind;
use crate::protocol::outcome_line;
use oqsc_core::sweep::derive_seed;
use oqsc_lang::{random_member, random_nonmember, Sym};
use oqsc_machine::run_decider_stream;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Sessions per catalog kind in the demo fleet.
pub const SESSIONS_PER_KIND: usize = 2;

/// Tokens per `FEED` line when driving a socket.
pub const FEED_CHUNK: usize = 8;

/// Language parameter for the demo words (`k = 1` keeps every backend
/// fast while still exercising the full `x#y#` shape).
const DEMO_K: u32 = 1;

/// One demo session: id, kind, constructor seed, and the word to feed.
pub type FleetEntry = (u64, DeciderKind, u64, Vec<Sym>);

/// The deterministic mixed fleet: every catalog kind, alternating
/// member/non-member words, all seeds derived from `base_seed`.
pub fn demo_fleet(base_seed: u64) -> Vec<FleetEntry> {
    let mut fleet = Vec::new();
    for (ki, kind) in DeciderKind::ALL.into_iter().enumerate() {
        for s in 0..SESSIONS_PER_KIND {
            let i = ki * SESSIONS_PER_KIND + s;
            let seed = derive_seed(base_seed, i);
            let mut rng = StdRng::seed_from_u64(derive_seed(base_seed ^ 0x17EA7, i));
            let word = if s % 2 == 0 {
                random_member(DEMO_K, &mut rng).encode()
            } else {
                random_nonmember(DEMO_K, 1, &mut rng).encode()
            };
            fleet.push((i as u64, kind, seed, word));
        }
    }
    fleet
}

/// The fleet's `OUTCOME` lines from direct, uninterrupted runs — the
/// reference the served lines must match byte for byte.
pub fn direct_outcome_lines(base_seed: u64) -> Vec<String> {
    demo_fleet(base_seed)
        .into_iter()
        .map(|(id, kind, seed, word)| outcome_line(id, &run_decider_stream(kind.build(seed), word)))
        .collect()
}

/// Sends one request line and reads one response line; `ERR` responses
/// become I/O errors.
fn round_trip(
    writer: &mut UnixStream,
    reader: &mut BufReader<UnixStream>,
    request: &str,
) -> std::io::Result<String> {
    writer.write_all(format!("{request}\n").as_bytes())?;
    writer.flush()?;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::other("server closed the connection"));
        }
        if !line.trim().is_empty() {
            break;
        }
    }
    let line = line.trim().to_string();
    if let Some(msg) = line.strip_prefix("ERR ") {
        return Err(std::io::Error::other(format!("{request}: {msg}")));
    }
    Ok(line)
}

/// Drives the demo fleet through a serving socket: opens every session,
/// feeds all words round-robin in [`FEED_CHUNK`]-token slices (maximal
/// interleaving, so the server's LRU churns), finishes each session, and
/// returns the `OUTCOME` lines in id order.
pub fn drive_socket(socket: impl AsRef<Path>, base_seed: u64) -> std::io::Result<Vec<String>> {
    let mut writer = UnixStream::connect(socket.as_ref())?;
    let mut reader = BufReader::new(writer.try_clone()?);
    let fleet = demo_fleet(base_seed);
    for (id, kind, seed, _) in &fleet {
        round_trip(
            &mut writer,
            &mut reader,
            &format!("OPEN {id} {} {seed}", kind.name()),
        )?;
    }
    let mut cursors: Vec<(u64, Vec<Sym>, usize)> = fleet
        .into_iter()
        .map(|(id, _, _, word)| (id, word, 0))
        .collect();
    loop {
        let mut progressed = false;
        for (id, word, pos) in &mut cursors {
            if *pos < word.len() {
                let end = (*pos + FEED_CHUNK).min(word.len());
                let text = oqsc_lang::token::to_string(&word[*pos..end]);
                round_trip(&mut writer, &mut reader, &format!("FEED {id} {text}"))?;
                *pos = end;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let mut lines = Vec::with_capacity(cursors.len());
    for (id, _, _) in &cursors {
        lines.push(round_trip(
            &mut writer,
            &mut reader,
            &format!("FINISH {id}"),
        )?);
    }
    Ok(lines)
}

/// Requests the server's `STATS` line.
pub fn stats_socket(socket: impl AsRef<Path>) -> std::io::Result<String> {
    let mut writer = UnixStream::connect(socket.as_ref())?;
    let mut reader = BufReader::new(writer.try_clone()?);
    round_trip(&mut writer, &mut reader, "STATS")
}

/// Sends `SHUTDOWN`, draining the server's accept pool.
pub fn shutdown_socket(socket: impl AsRef<Path>) -> std::io::Result<()> {
    let mut writer = UnixStream::connect(socket.as_ref())?;
    let mut reader = BufReader::new(writer.try_clone()?);
    round_trip(&mut writer, &mut reader, "SHUTDOWN").map(|_| ())
}
