//! The reference driver: a deterministic mixed fleet pushed through the
//! serving protocol, plus the same fleet run directly — the two sides
//! of the CI `cmp`.
//!
//! [`demo_fleet`] builds one session per catalog kind times
//! [`SESSIONS_PER_KIND`] member/non-member words (all derived from one
//! base seed), [`drive_fleet`] plays it through a serving endpoint
//! (Unix socket or TCP, direct engine or router), and
//! [`direct_outcome_lines`] computes the identical `OUTCOME` lines with
//! plain [`run_decider_stream`] — no engine, no socket. Byte-equal
//! outputs are the serving rung's end-to-end correctness check.
//!
//! Two feed shapes drive the same fleet: [`FeedMode::Chunks`] sends one
//! `FEED` round trip per [`FEED_CHUNK`]-token slice, round-robin across
//! sessions (maximal interleaving, so the eviction tiers churn);
//! [`FeedMode::Batched`] pipelines one `FEEDS` line per session — the
//! fast path whose speedup the bench record pins. [`DrivePhase`] splits
//! a drive across a server restart: `FirstHalf` feeds half of every
//! word and leaves the sessions mid-stream, `SecondHalf` reopens
//! nothing and relies on spill-store hydration to finish them.

use crate::catalog::DeciderKind;
use crate::protocol::{feeds_line, outcome_line};
use crate::transport::LineClient;
use oqsc_core::sweep::derive_seed;
use oqsc_lang::{random_member, random_nonmember, Sym};
use oqsc_machine::run_decider_stream;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sessions per catalog kind in the demo fleet.
pub const SESSIONS_PER_KIND: usize = 2;

/// Tokens per `FEED` line (and per `FEEDS` chunk) when driving.
pub const FEED_CHUNK: usize = 8;

/// Language parameter for the demo words (`k = 1` keeps every backend
/// fast while still exercising the full `x#y#` shape).
const DEMO_K: u32 = 1;

/// How a drive's tokens travel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeedMode {
    /// One `FEED` round trip per chunk, round-robin across sessions.
    Chunks,
    /// One pipelined `FEEDS` line per session — the batched fast path.
    Batched,
}

/// Which slice of every session's word a drive covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrivePhase {
    /// Open, feed everything, finish.
    Full,
    /// Open and feed the first half of every word, then stop — the
    /// sessions stay mid-stream for a shutdown/restart to preserve.
    FirstHalf,
    /// Feed the second half and finish, *without* opening: every
    /// session must hydrate from the server's spill store.
    SecondHalf,
}

/// One demo session: id, kind, constructor seed, and the word to feed.
pub type FleetEntry = (u64, DeciderKind, u64, Vec<Sym>);

/// The deterministic mixed fleet: every catalog kind, alternating
/// member/non-member words, all seeds derived from `base_seed`.
pub fn demo_fleet(base_seed: u64) -> Vec<FleetEntry> {
    let mut fleet = Vec::new();
    for (ki, kind) in DeciderKind::ALL.into_iter().enumerate() {
        for s in 0..SESSIONS_PER_KIND {
            let i = ki * SESSIONS_PER_KIND + s;
            let seed = derive_seed(base_seed, i);
            let mut rng = StdRng::seed_from_u64(derive_seed(base_seed ^ 0x17EA7, i));
            let word = if s % 2 == 0 {
                random_member(DEMO_K, &mut rng).encode()
            } else {
                random_nonmember(DEMO_K, 1, &mut rng).encode()
            };
            fleet.push((i as u64, kind, seed, word));
        }
    }
    fleet
}

/// The fleet's `OUTCOME` lines from direct, uninterrupted runs — the
/// reference the served lines must match byte for byte.
pub fn direct_outcome_lines(base_seed: u64) -> Vec<String> {
    demo_fleet(base_seed)
        .into_iter()
        .map(|(id, kind, seed, word)| outcome_line(id, &run_decider_stream(kind.build(seed), word)))
        .collect()
}

/// Turns an `ERR` response into an I/O error carrying the request.
fn ok_or_err(request: &str, response: String) -> std::io::Result<String> {
    if let Some(msg) = response.strip_prefix("ERR ") {
        return Err(std::io::Error::other(format!("{request}: {msg}")));
    }
    Ok(response)
}

/// Sends a slab of request lines — pipelined in [`FeedMode::Batched`],
/// one round trip each in [`FeedMode::Chunks`] — and checks every
/// response for `ERR`.
fn send_all(
    client: &mut LineClient,
    mode: FeedMode,
    requests: &[String],
) -> std::io::Result<Vec<String>> {
    match mode {
        FeedMode::Batched => {
            let responses = client.pipeline(requests)?;
            requests
                .iter()
                .zip(responses)
                .map(|(req, resp)| ok_or_err(req, resp))
                .collect()
        }
        FeedMode::Chunks => requests
            .iter()
            .map(|req| {
                let resp = client.ask(req)?;
                ok_or_err(req, resp)
            })
            .collect(),
    }
}

/// Drives the demo fleet through a serving endpoint (`addr` is a Unix
/// socket path or TCP `host:port`; an engine or a router, the protocol
/// is the same) and returns the `OUTCOME` lines in id order —
/// [`DrivePhase::FirstHalf`] returns no lines, it leaves the fleet
/// mid-stream on purpose.
pub fn drive_fleet(
    addr: &str,
    base_seed: u64,
    mode: FeedMode,
    phase: DrivePhase,
) -> std::io::Result<Vec<String>> {
    let mut client = LineClient::connect(addr)?;
    let entries: Vec<FleetEntry> = demo_fleet(base_seed)
        .into_iter()
        .map(|(id, kind, seed, word)| {
            let half = word.len() / 2;
            let slice = match phase {
                DrivePhase::Full => word,
                DrivePhase::FirstHalf => word[..half].to_vec(),
                DrivePhase::SecondHalf => word[half..].to_vec(),
            };
            (id, kind, seed, slice)
        })
        .collect();

    if phase != DrivePhase::SecondHalf {
        let opens: Vec<String> = entries
            .iter()
            .map(|(id, kind, seed, _)| format!("OPEN {id} {} {seed}", kind.name()))
            .collect();
        send_all(&mut client, mode, &opens)?;
    }

    match mode {
        FeedMode::Chunks => {
            // Round-robin chunk slices: maximal cross-session
            // interleaving, one round trip per chunk.
            let mut cursors: Vec<(u64, &[Sym], usize)> = entries
                .iter()
                .map(|(id, _, _, word)| (*id, word.as_slice(), 0))
                .collect();
            loop {
                let mut progressed = false;
                for (id, word, pos) in &mut cursors {
                    if *pos < word.len() {
                        let end = (*pos + FEED_CHUNK).min(word.len());
                        let text = oqsc_lang::token::to_string(&word[*pos..end]);
                        let request = format!("FEED {id} {text}");
                        ok_or_err(&request, client.ask(&request)?)?;
                        *pos = end;
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
        FeedMode::Batched => {
            let feeds: Vec<String> = entries
                .iter()
                .filter(|(_, _, _, word)| !word.is_empty())
                .map(|(id, _, _, word)| {
                    let chunks: Vec<Vec<Sym>> =
                        word.chunks(FEED_CHUNK).map(|c| c.to_vec()).collect();
                    feeds_line(*id, &chunks)
                })
                .collect();
            send_all(&mut client, mode, &feeds)?;
        }
    }

    if phase == DrivePhase::FirstHalf {
        return Ok(Vec::new());
    }
    let finishes: Vec<String> = entries
        .iter()
        .map(|(id, _, _, _)| format!("FINISH {id}"))
        .collect();
    send_all(&mut client, mode, &finishes)
}

/// [`drive_fleet`] in its original shape: per-chunk `FEED` round trips
/// over the whole fleet.
pub fn drive_socket(addr: &str, base_seed: u64) -> std::io::Result<Vec<String>> {
    drive_fleet(addr, base_seed, FeedMode::Chunks, DrivePhase::Full)
}

/// Requests the endpoint's `STATS` line.
pub fn stats_socket(addr: &str) -> std::io::Result<String> {
    let mut client = LineClient::connect(addr)?;
    let response = client.ask("STATS")?;
    ok_or_err("STATS", response)
}

/// Sends `SHUTDOWN`, draining the endpoint's accept pool (and, through
/// a router, every engine behind it).
pub fn shutdown_socket(addr: &str) -> std::io::Result<()> {
    let mut client = LineClient::connect(addr)?;
    let response = client.ask("SHUTDOWN")?;
    ok_or_err("SHUTDOWN", response).map(|_| ())
}
