//! # oqsc-serve — the session multiplexing engine
//!
//! The serving rung of the ROADMAP's "heavy traffic" north star: one box
//! driving a huge number of concurrent streaming-decider sessions with a
//! bounded working set. [`MuxEngine`] keeps a byte-budgeted, sharded
//! live tier (LRU or size-aware GDSF eviction, [`EvictionPolicy`]) of
//! [`Session`](oqsc_machine::Session)s over two cold tiers —
//! LZ4-compressed checkpoint bytes in memory, then a persistent
//! [`CheckpointStore`](oqsc_machine::CheckpointStore) — and hydrates a
//! suspended session on its next token.
//!
//! The engine's contract (DESIGN.md §12): for any interleaving of token
//! feeds and any budget — including a budget of zero, where every feed
//! evicts and rehydrates — per-session verdicts and metering are
//! `==`-identical to uninterrupted
//! [`run_decider_stream`](oqsc_machine::run_decider_stream), at any
//! worker count. `tests/mux_identity.rs` pins that across all seven
//! deciders, all four backends, three eviction orders and 1/2/8 workers.
//!
//! The front end is a line protocol
//! (`OPEN`/`FEED`/`FEEDS`/`FINISH`/`STATS`, [`protocol`]) over a Unix
//! socket *or* TCP ([`transport`]) served by a std-only thread pool
//! ([`Server`]). [`Router`] scales the same protocol out: it
//! consistent-hashes session ids across N backend engines with
//! byte-identical per-session transcripts (DESIGN.md §14).
//! `experiments --serve/--route/--drive` and the CI smokes drive both
//! end to end against direct runs.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod catalog;
pub mod drive;
pub mod mux;
pub mod protocol;
pub mod route;
pub mod server;
pub mod transport;

pub use catalog::{AnyDecider, DeciderKind, LDISJ_REPS, SKETCH_BUDGET};
pub use drive::{
    demo_fleet, direct_outcome_lines, drive_fleet, drive_socket, shutdown_socket, stats_socket,
    DrivePhase, FeedMode, FleetEntry, FEED_CHUNK, SESSIONS_PER_KIND,
};
pub use mux::{run_fleet, EvictionPolicy, MuxConfig, MuxEngine, MuxError, MuxStats};
pub use protocol::{
    fabric_request_line, fabric_response_line, feeds_line, fleet_outcome_line, outcome_line,
    parse_fabric_request, parse_fabric_response, parse_fleet_outcome_line, parse_outcome_line,
    parse_request, parse_stats_line, stats_line, FabricRequest, FabricResponse, Request,
};
pub use route::{route_index, Router, RouterConfig};
pub use server::{bind_unix_socket, Server, ServerConfig};
pub use transport::{LineClient, Listener, Stream, MAX_LINE_BYTES};
