//! # oqsc-serve — the session multiplexing engine
//!
//! The serving rung of the ROADMAP's "heavy traffic" north star: one box
//! driving a huge number of concurrent streaming-decider sessions with a
//! bounded working set. [`MuxEngine`] keeps a byte-budgeted, sharded LRU
//! of live [`Session`](oqsc_machine::Session)s over two cold tiers —
//! LZ4-compressed checkpoint bytes in memory, then a persistent
//! [`CheckpointStore`](oqsc_machine::CheckpointStore) — and hydrates a
//! suspended session on its next token.
//!
//! The engine's contract (DESIGN.md §12): for any interleaving of token
//! feeds and any budget — including a budget of zero, where every feed
//! evicts and rehydrates — per-session verdicts and metering are
//! `==`-identical to uninterrupted
//! [`run_decider_stream`](oqsc_machine::run_decider_stream), at any
//! worker count. `tests/mux_identity.rs` pins that across all seven
//! deciders, all four backends, three eviction orders and 1/2/8 workers.
//!
//! The front end is a line protocol (`OPEN`/`FEED`/`FINISH`/`STATS`,
//! [`protocol`]) over a Unix socket served by a std-only thread pool
//! ([`Server`]); `experiments --serve/--drive` and the CI smoke drive it
//! end to end against direct runs.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod catalog;
pub mod drive;
pub mod mux;
pub mod protocol;
pub mod server;

pub use catalog::{AnyDecider, DeciderKind, LDISJ_REPS, SKETCH_BUDGET};
pub use drive::{
    demo_fleet, direct_outcome_lines, drive_socket, shutdown_socket, stats_socket, FleetEntry,
    FEED_CHUNK, SESSIONS_PER_KIND,
};
pub use mux::{run_fleet, MuxConfig, MuxEngine, MuxError, MuxStats};
pub use protocol::{
    fabric_request_line, fabric_response_line, fleet_outcome_line, outcome_line,
    parse_fabric_request, parse_fabric_response, parse_fleet_outcome_line, parse_outcome_line,
    parse_request, stats_line, FabricRequest, FabricResponse, Request,
};
pub use server::{bind_unix_socket, Server, ServerConfig};
