//! Either-transport plumbing shared by every line-protocol endpoint:
//! Unix domain sockets and TCP behind one listener/stream pair, plus
//! bounded request-line reads.
//!
//! Addresses containing `:` are TCP `host:port`; everything else is a
//! Unix socket path. That one rule is shared by the serving tier, the
//! router and the distributed sweep fabric, so `--serve`, `--drive`,
//! `--route` and `--fabric-*` all accept either form interchangeably.
//!
//! The line reader is deliberately hostile-input-proof: a request line
//! is read through a hard [`MAX_LINE_BYTES`] cap, so a client streaming
//! gigabytes without a newline costs the server one bounded buffer and
//! one `ERR` response, never an unbounded allocation.

use std::io::{BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Longest accepted request line in bytes, newline included. Generous —
/// a maximal `FEEDS` line is a few KiB — but a hard wall against
/// hostile clients.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// `host:port` (TCP) vs socket path (Unix): addresses with a `:` dial
/// TCP, everything else names a filesystem socket.
pub fn is_tcp_addr(addr: &str) -> bool {
    addr.contains(':')
}

/// Binds a Unix socket at `path`, replacing a *stale* socket file left
/// by a dead server — and only a stale one. A leftover path is
/// probe-connected first: if a live server answers, binding fails with
/// [`AddrInUse`](std::io::ErrorKind::AddrInUse) instead of silently
/// clobbering it out from under its clients, and a path that is not a
/// socket at all (a regular file, a directory) is never removed.
///
/// Shared by [`Server`](crate::Server), the [`Router`](crate::Router)
/// and the distributed sweep fabric's coordinator listener, so every
/// line-protocol endpoint in the workspace gets the same stale-vs-live
/// discipline.
pub fn bind_unix_socket(path: &Path) -> std::io::Result<UnixListener> {
    if let Ok(meta) = std::fs::symlink_metadata(path) {
        use std::os::unix::fs::FileTypeExt;
        if !meta.file_type().is_socket() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!(
                    "{} exists and is not a socket; refusing to replace it",
                    path.display()
                ),
            ));
        }
        if UnixStream::connect(path).is_ok() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!(
                    "a live server is already listening on {}; shut it down first",
                    path.display()
                ),
            ));
        }
        // Nothing answered: a stale socket file from a dead server.
        std::fs::remove_file(path)?;
    }
    UnixListener::bind(path)
}

/// A listening endpoint on either transport.
pub enum Listener {
    /// A Unix socket listener plus the path it owns (removed by the
    /// server on shutdown).
    Unix(UnixListener, PathBuf),
    /// A TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds `addr` on the transport its shape selects. Unix paths get
    /// the stale-vs-live discipline of [`bind_unix_socket`].
    pub fn bind(addr: &str) -> std::io::Result<Listener> {
        if is_tcp_addr(addr) {
            Ok(Listener::Tcp(TcpListener::bind(addr)?))
        } else {
            let path = PathBuf::from(addr);
            let listener = bind_unix_socket(&path)?;
            Ok(Listener::Unix(listener, path))
        }
    }

    /// Toggles non-blocking accepts.
    pub fn set_nonblocking(&self, yes: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l, _) => l.set_nonblocking(yes),
            Listener::Tcp(l) => l.set_nonblocking(yes),
        }
    }

    /// Accepts one connection.
    pub fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }

    /// The bound address in the same shape [`Listener::bind`] accepts —
    /// for TCP the *actual* address, so binding port `0` reports the
    /// kernel-chosen port a client can dial.
    pub fn local_addr(&self) -> String {
        match self {
            Listener::Unix(_, path) => path.display().to_string(),
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<tcp>".to_string()),
        }
    }

    /// The socket file this listener owns, if it is a Unix listener.
    pub fn unix_path(&self) -> Option<&Path> {
        match self {
            Listener::Unix(_, path) => Some(path),
            Listener::Tcp(_) => None,
        }
    }
}

/// One connection on either transport.
pub enum Stream {
    /// A Unix-socket connection.
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    /// Connects to `addr` on the transport its shape selects.
    pub fn connect(addr: &str) -> std::io::Result<Stream> {
        if is_tcp_addr(addr) {
            TcpStream::connect(addr).map(Stream::Tcp)
        } else {
            UnixStream::connect(addr).map(Stream::Unix)
        }
    }

    /// An independently owned handle to the same connection.
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Sets the read timeout (turns blocked reads into polls).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// What one bounded line read produced.
#[derive(Debug, PartialEq, Eq)]
pub enum LineStatus {
    /// A complete line is in the buffer (newline-terminated, or the
    /// final unterminated line before EOF).
    Line,
    /// Clean EOF with nothing buffered.
    Closed,
    /// The line crossed [`MAX_LINE_BYTES`] without a newline; the rest
    /// of it is still unread. Respond `ERR` and [`discard_line`].
    Overflow,
}

/// Reads one request line into `buf` through the [`MAX_LINE_BYTES`]
/// cap. Timeouts (`WouldBlock`/`TimedOut`) surface as `Err` with the
/// partial line preserved in `buf` — the caller checks its shutdown
/// flag and calls again; a client writing one byte per 60 ms must never
/// see its request truncated at a timeout boundary.
pub fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
) -> std::io::Result<LineStatus> {
    loop {
        // Read at most one byte past the cap: enough to tell "exactly
        // at the limit" from "over it", never an unbounded append.
        let room = (MAX_LINE_BYTES + 1).saturating_sub(buf.len());
        if room == 0 {
            return Ok(LineStatus::Overflow);
        }
        let n = reader.by_ref().take(room as u64).read_until(b'\n', buf)?;
        if n == 0 {
            return Ok(if buf.is_empty() {
                LineStatus::Closed
            } else {
                LineStatus::Line
            });
        }
        if buf.last() == Some(&b'\n') {
            return Ok(LineStatus::Line);
        }
        // Filled `room` bytes without a newline; loop to flag overflow.
    }
}

/// Consumes the remainder of an oversized line in bounded chunks.
/// Returns `true` once the newline has been swallowed (the connection
/// is back in sync), `false` on EOF. Timeouts surface as `Err`, same
/// contract as [`read_line_bounded`].
pub fn discard_line<R: BufRead>(reader: &mut R) -> std::io::Result<bool> {
    let mut scratch = Vec::with_capacity(1024);
    loop {
        scratch.clear();
        let n = reader.by_ref().take(1024).read_until(b'\n', &mut scratch)?;
        if n == 0 {
            return Ok(false);
        }
        if scratch.last() == Some(&b'\n') {
            return Ok(true);
        }
    }
}

/// A line-protocol client: one request line out, one response line in.
/// Works over either transport; reads block (no timeout) because the
/// far side always answers every request line.
pub struct LineClient {
    writer: Stream,
    reader: std::io::BufReader<Stream>,
}

/// Request lines in flight per pipeline window — small enough that the
/// un-read responses can never fill both socket buffers and deadlock
/// the writer, large enough to amortize the round trip.
const PIPELINE_WINDOW: usize = 64;

impl LineClient {
    /// Connects to a line-protocol endpoint at `addr`.
    pub fn connect(addr: &str) -> std::io::Result<LineClient> {
        let writer = Stream::connect(addr)?;
        let reader = std::io::BufReader::new(writer.try_clone()?);
        Ok(LineClient { writer, reader })
    }

    /// Reads one non-empty response line.
    fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::other("server closed the connection"));
            }
            if !line.trim().is_empty() {
                return Ok(line.trim().to_string());
            }
        }
    }

    /// Sends one request line and reads its response line verbatim
    /// (`ERR` responses included — the router relays them untouched).
    pub fn ask(&mut self, request: &str) -> std::io::Result<String> {
        self.writer.write_all(format!("{request}\n").as_bytes())?;
        self.writer.flush()?;
        self.recv_line()
    }

    /// Pipelines `requests`: writes them in windows of a few dozen
    /// lines, then reads the matching responses, so `n` requests cost
    /// ~`n / window` round trips instead of `n`. Responses come back in
    /// request order (the protocol is strictly one line per request).
    pub fn pipeline(&mut self, requests: &[String]) -> std::io::Result<Vec<String>> {
        let mut responses = Vec::with_capacity(requests.len());
        for window in requests.chunks(PIPELINE_WINDOW) {
            for request in window {
                self.writer.write_all(format!("{request}\n").as_bytes())?;
            }
            self.writer.flush()?;
            for _ in window {
                responses.push(self.recv_line()?);
            }
        }
        Ok(responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn bounded_reads_cap_hostile_lines_and_resync() {
        // A normal line, an oversized one, then a normal one again.
        let mut data = Vec::new();
        data.extend_from_slice(b"FIRST\n");
        data.extend_from_slice(&vec![b'x'; MAX_LINE_BYTES + 500]);
        data.push(b'\n');
        data.extend_from_slice(b"SECOND\n");
        let mut reader = Cursor::new(data);
        let mut buf = Vec::new();
        assert_eq!(
            read_line_bounded(&mut reader, &mut buf).unwrap(),
            LineStatus::Line
        );
        assert_eq!(buf, b"FIRST\n");
        buf.clear();
        assert_eq!(
            read_line_bounded(&mut reader, &mut buf).unwrap(),
            LineStatus::Overflow
        );
        assert!(
            buf.len() <= MAX_LINE_BYTES + 1,
            "allocation must stay bounded"
        );
        buf.clear();
        assert!(discard_line(&mut reader).unwrap(), "resync on the newline");
        assert_eq!(
            read_line_bounded(&mut reader, &mut buf).unwrap(),
            LineStatus::Line
        );
        assert_eq!(buf, b"SECOND\n");
        buf.clear();
        assert_eq!(
            read_line_bounded(&mut reader, &mut buf).unwrap(),
            LineStatus::Closed
        );
    }

    #[test]
    fn final_unterminated_line_is_still_delivered() {
        let mut reader = Cursor::new(b"TAIL".to_vec());
        let mut buf = Vec::new();
        assert_eq!(
            read_line_bounded(&mut reader, &mut buf).unwrap(),
            LineStatus::Line
        );
        assert_eq!(buf, b"TAIL");
    }

    #[test]
    fn address_shapes_pick_the_transport() {
        assert!(is_tcp_addr("127.0.0.1:7700"));
        assert!(is_tcp_addr("[::1]:7700"));
        assert!(!is_tcp_addr("/tmp/server.sock"));
        assert!(!is_tcp_addr("relative.sock"));
    }
}
