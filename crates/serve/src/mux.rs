//! The session multiplexing engine: a byte-budgeted, sharded LRU of live
//! [`Session`]s over a cold tail of checkpoint bytes.
//!
//! One box cannot hold millions of *live* deciders — a dense-backend
//! session owns an amplitude vector — but it can hold millions of
//! *suspended* ones: PR 3 made every decider's complete configuration a
//! small versioned byte string, and the store layer compresses those
//! bytes ~13× with LZ4. [`MuxEngine`] exploits that asymmetry with three
//! tiers:
//!
//! 1. **Live** — resident [`Session`]s in a sharded, byte-budgeted LRU.
//! 2. **Warm** — suspended sessions as LZ4-compressed checkpoint bytes in
//!    memory; entered by LRU eviction, left by hydration on the next
//!    token.
//! 3. **Spill** — beyond a second byte budget, warm entries are appended
//!    to a persistent [`CheckpointStore`] and hydrated back through the
//!    store's [`latest`](CheckpointStore::latest) read path.
//!
//! The non-negotiable contract (DESIGN.md §12): for any interleaving of
//! token feeds and any LRU budget — including a pathological budget of 0
//! where every feed evicts and rehydrates — per-session verdicts and
//! metering are `==`-identical to an uninterrupted
//! [`run_decider_stream`](oqsc_machine::run_decider_stream), at any
//! worker count. This is the session-checkpoint transparency law applied
//! transitively: every tier transition is a `suspend`/`resume` round
//! trip, and the checkpoint law says each round trip is invisible.
//!
//! Budgets are enforced on **checkpointed size**: a session's byte cost
//! is the length of its serialized checkpoint, measured at every tier
//! transition (open, hydrate, evict). Per-id operations are serialized
//! by the owning shard's lock; callers present each session's tokens in
//! stream order, and distinct sessions proceed concurrently.

use oqsc_lang::Sym;
use oqsc_machine::{
    CheckpointError, CheckpointStore, Checkpointable, RunOutcome, Session, SessionCheckpoint,
    StoreError, COMPRESS_MIN_LEN,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering from poison. A handler thread that panics
/// mid-request (a malformed word deep in a decider, an allocation
/// failure) must not wedge every other session hashed onto the same
/// shard: the engine updates shard bookkeeping in panic-safe order
/// (maps and byte accounts are adjusted together, before and after the
/// only panic-prone call, `Session` feeding), so the inner state is
/// still consistent and the lock is safe to reclaim.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How a shard picks its live-tier eviction victim when the byte budget
/// overflows. Selectable per engine (`--eviction lru|gdsf`); the default
/// is the winner of the head-to-head `eviction` rows in
/// `BENCH_throughput.json`. Either policy preserves the engine's
/// identity contract — eviction order changes *which* sessions round
/// trip through suspend/resume, and the checkpoint transparency law
/// makes every such round trip invisible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the least-recently-touched session, byte costs ignored.
    #[default]
    Lru,
    /// Greedy-Dual-Size-Frequency: evict the lowest
    /// `clock + hits / cost` session, so a rarely touched session with a
    /// big checkpoint (a dense amplitude vector) goes before a hot,
    /// cheap one (a format checker), and the shard-wide clock inflates
    /// to each evicted priority so long-resident sessions cannot squat
    /// forever on stale frequency.
    Gdsf,
}

impl EvictionPolicy {
    /// Every policy, in CLI order.
    pub const ALL: [EvictionPolicy; 2] = [EvictionPolicy::Lru, EvictionPolicy::Gdsf];

    /// The CLI name (`lru`/`gdsf`).
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Gdsf => "gdsf",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<EvictionPolicy> {
        EvictionPolicy::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The eviction-order key for a live session: lower evicts first.
    /// LRU orders purely by touch stamp; GDSF by the inflated-clock
    /// fixed-point priority (the stamp only tie-breaks, via the order
    /// map's composite key).
    fn priority(self, inflation: u128, stamp: u64, hits: u64, cost: usize) -> u128 {
        match self {
            EvictionPolicy::Lru => u128::from(stamp),
            EvictionPolicy::Gdsf => {
                inflation + ((u128::from(hits) << GDSF_FREQ_SHIFT) / cost.max(1) as u128)
            }
        }
    }
}

/// Fixed-point scale for the GDSF `hits / cost` term: 32 fractional
/// bits keep the ratio exact for any realistic hit count and checkpoint
/// size without touching floating point (eviction stays deterministic).
const GDSF_FREQ_SHIFT: u32 = 32;

/// Sizing knobs for one [`MuxEngine`].
#[derive(Clone, Copy, Debug)]
pub struct MuxConfig {
    /// Total bytes of live (resident) session state across all shards.
    /// `0` is legal and means every feed evicts what it touched — the
    /// pathological schedule the identity tests pin.
    pub live_bytes_budget: usize,
    /// Total bytes of warm (compressed, in-memory) checkpoints across
    /// all shards. Overflow spills to the [`CheckpointStore`] when one
    /// is attached; without a store the warm tier is unbounded.
    pub warm_bytes_budget: usize,
    /// Number of independently locked shards. Sessions are assigned by
    /// a hash of their id; each shard enforces `budget / shards` of the
    /// byte budgets.
    pub shards: usize,
    /// Live-tier victim selection when the byte budget overflows.
    pub eviction: EvictionPolicy,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            live_bytes_budget: 64 << 20,
            warm_bytes_budget: 256 << 20,
            shards: 16,
            eviction: EvictionPolicy::default(),
        }
    }
}

/// Why a mux operation failed.
#[derive(Debug)]
pub enum MuxError {
    /// The id was never opened (or was opened on a different engine).
    UnknownSession(u64),
    /// The id is already open (live, warm, or spilled).
    DuplicateSession(u64),
    /// The id was already finished; session ids are single-use.
    Retired(u64),
    /// The spill store failed.
    Store(StoreError),
    /// A checkpoint failed to decode on hydration.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for MuxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MuxError::UnknownSession(id) => write!(f, "unknown session {id}"),
            MuxError::DuplicateSession(id) => write!(f, "session {id} is already open"),
            MuxError::Retired(id) => write!(f, "session {id} is already finished"),
            MuxError::Store(e) => write!(f, "spill store: {e}"),
            MuxError::Checkpoint(e) => write!(f, "hydration: {e}"),
        }
    }
}

impl std::error::Error for MuxError {}

impl From<StoreError> for MuxError {
    fn from(e: StoreError) -> Self {
        MuxError::Store(e)
    }
}

impl From<CheckpointError> for MuxError {
    fn from(e: CheckpointError) -> Self {
        MuxError::Checkpoint(e)
    }
}

/// Point-in-time engine statistics (tier occupancy) plus monotonic
/// lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MuxStats {
    /// Sessions opened over the engine's lifetime.
    pub opened: u64,
    /// Sessions finished (retired).
    pub finished: u64,
    /// Tokens fed over the engine's lifetime.
    pub tokens: u64,
    /// Sessions currently live (resident `Session`s).
    pub live: u64,
    /// High-water mark of `live`.
    pub peak_live: u64,
    /// Sessions currently in the warm (compressed in-memory) tier.
    pub warm: u64,
    /// Bytes of live session state (checkpointed-size cost model).
    pub live_bytes: u64,
    /// Bytes of warm compressed checkpoints.
    pub warm_bytes: u64,
    /// Live → warm evictions over the lifetime.
    pub evictions: u64,
    /// Warm/spill → live hydrations over the lifetime.
    pub hydrations: u64,
    /// Warm → store spills over the lifetime.
    pub spills: u64,
    /// Hydrations that had to read the spill store.
    pub spill_hydrations: u64,
}

/// A resident session plus its eviction-order bookkeeping.
struct LiveSession<D: Checkpointable> {
    session: Session<D>,
    /// Touch stamp — the eviction-order tiebreak, refreshed on every
    /// touch (and the whole key under [`EvictionPolicy::Lru`]).
    stamp: u64,
    /// Checkpointed size at the last tier transition — the session's
    /// contribution to the live byte budget (and the GDSF size term).
    cost: usize,
    /// Touches since the session entered the engine (the GDSF
    /// frequency term). Survives warm-tier round trips, resets when a
    /// session comes back from the spill store.
    hits: u64,
    /// The session's current key in the shard's eviction order map.
    priority: u128,
}

/// A suspended session: checkpoint bytes, LZ4-compressed when that wins.
struct WarmEntry {
    bytes: Vec<u8>,
    uncompressed_len: usize,
    compressed: bool,
    stamp: u64,
    /// Carried across the warm round trip so GDSF frequency is not
    /// erased by an eviction.
    hits: u64,
}

impl WarmEntry {
    fn checkpoint(&self) -> Result<SessionCheckpoint, MuxError> {
        let raw = if self.compressed {
            lz4_flex::block::decompress(&self.bytes, self.uncompressed_len).map_err(|e| {
                MuxError::Checkpoint(CheckpointError::Malformed(format!(
                    "warm-tier LZ4 payload: {e}"
                )))
            })?
        } else {
            self.bytes.clone()
        };
        Ok(SessionCheckpoint::from_bytes(raw)?)
    }
}

/// One lock domain: a slice of the id space with its own eviction order
/// and byte accounting for the live and warm tiers.
struct Shard<D: Checkpointable> {
    live: HashMap<u64, LiveSession<D>>,
    /// `(priority, stamp) → id`, lowest priority first; eviction pops
    /// the front. Under LRU the priority *is* the stamp, so this is the
    /// classic recency order; under GDSF it is the inflated-clock
    /// fixed-point key and the stamp only breaks ties.
    order: BTreeMap<(u128, u64), u64>,
    /// The GDSF clock: raised to each evicted priority, so newly
    /// touched sessions always outrank long-gone ones. Stays 0 under
    /// LRU.
    inflation: u128,
    live_bytes: usize,
    warm: HashMap<u64, WarmEntry>,
    /// stamp → id for the warm tier; spilling pops the front.
    warm_lru: BTreeMap<u64, u64>,
    warm_bytes: usize,
    /// Finished ids — single-use, and a shield against resurrecting a
    /// finished session from its stale spill-store records.
    retired: HashSet<u64>,
}

impl<D: Checkpointable> Shard<D> {
    fn new() -> Self {
        Shard {
            live: HashMap::new(),
            order: BTreeMap::new(),
            inflation: 0,
            live_bytes: 0,
            warm: HashMap::new(),
            warm_lru: BTreeMap::new(),
            warm_bytes: 0,
            retired: HashSet::new(),
        }
    }
}

/// SplitMix64 — the shard hash (and the same mix the sweep registry uses
/// for seed derivation). Also the router's rendezvous hash ingredient.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The engine. Shared by reference across worker threads: every method
/// takes `&self`, and all interior state is behind shard locks and
/// atomics.
pub struct MuxEngine<D: Checkpointable> {
    shards: Vec<Mutex<Shard<D>>>,
    spill: Option<Mutex<CheckpointStore>>,
    policy: EvictionPolicy,
    shard_live_budget: usize,
    shard_warm_budget: usize,
    clock: AtomicU64,
    opened: AtomicU64,
    finished: AtomicU64,
    tokens: AtomicU64,
    live_count: AtomicU64,
    peak_live: AtomicU64,
    evictions: AtomicU64,
    hydrations: AtomicU64,
    spills: AtomicU64,
    spill_hydrations: AtomicU64,
}

impl<D: Checkpointable> MuxEngine<D> {
    /// A two-tier engine (live + warm); the warm tier is unbounded.
    pub fn new(config: MuxConfig) -> Self {
        Self::build(config, None)
    }

    /// A three-tier engine: warm-tier overflow spills into `store`, and
    /// spilled sessions hydrate back through the store's read path. The
    /// store must have been created for decider type `D`
    /// ([`CheckpointStore::create_for`]).
    pub fn with_spill(config: MuxConfig, store: CheckpointStore) -> Self {
        Self::build(config, Some(store))
    }

    fn build(config: MuxConfig, store: Option<CheckpointStore>) -> Self {
        let shards = config.shards.max(1);
        MuxEngine {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            spill: store.map(Mutex::new),
            policy: config.eviction,
            shard_live_budget: config.live_bytes_budget / shards,
            shard_warm_budget: config.warm_bytes_budget / shards,
            clock: AtomicU64::new(0),
            opened: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            tokens: AtomicU64::new(0),
            live_count: AtomicU64::new(0),
            peak_live: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hydrations: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            spill_hydrations: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, id: u64) -> &Mutex<Shard<D>> {
        &self.shards[(mix64(id) % self.shards.len() as u64) as usize]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn note_live_insert(&self) {
        let now = self.live_count.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_live.fetch_max(now, Ordering::Relaxed);
    }

    /// Opens session `id` at stream position 0. Ids are single-use per
    /// engine: an id that is open in any tier, or already finished, is
    /// rejected.
    pub fn open(&self, id: u64, decider: D) -> Result<(), MuxError> {
        let mut shard = lock_recover(self.shard_of(id));
        if shard.retired.contains(&id) {
            return Err(MuxError::Retired(id));
        }
        if shard.live.contains_key(&id) || shard.warm.contains_key(&id) {
            return Err(MuxError::DuplicateSession(id));
        }
        if let Some(store) = &self.spill {
            if lock_recover(store).latest_position(id).is_some() {
                return Err(MuxError::DuplicateSession(id));
            }
        }
        let session = Session::new(decider);
        let cost = session.suspend().byte_len();
        let stamp = self.tick();
        self.admit(&mut shard, id, session, cost, 1, stamp);
        self.opened.fetch_add(1, Ordering::Relaxed);
        self.enforce_budgets(&mut shard)
    }

    /// Inserts a session into a shard's live tier with full eviction
    /// bookkeeping (shared by open, hydrate, and the unit tests'
    /// direct insertions).
    fn admit(
        &self,
        shard: &mut Shard<D>,
        id: u64,
        session: Session<D>,
        cost: usize,
        hits: u64,
        stamp: u64,
    ) {
        let priority = self.policy.priority(shard.inflation, stamp, hits, cost);
        shard.live.insert(
            id,
            LiveSession {
                session,
                stamp,
                cost,
                hits,
                priority,
            },
        );
        shard.order.insert((priority, stamp), id);
        shard.live_bytes += cost;
        self.note_live_insert();
    }

    /// Feeds the next `word.len()` tokens of session `id`, hydrating it
    /// from the warm or spill tier if it is not live, then re-enforcing
    /// the byte budgets (which may immediately re-evict it). Returns the
    /// session's new stream position.
    pub fn feed(&self, id: u64, word: &[Sym]) -> Result<u64, MuxError> {
        let mut shard = lock_recover(self.shard_of(id));
        self.hydrate(&mut shard, id)?;
        let stamp = self.tick();
        let inflation = shard.inflation;
        let live = shard.live.get_mut(&id).expect("hydrated");
        let old_key = (live.priority, live.stamp);
        live.session.feed_slice(word);
        let position = live.session.position();
        live.stamp = stamp;
        live.hits += 1;
        live.priority = self.policy.priority(inflation, stamp, live.hits, live.cost);
        let new_key = (live.priority, live.stamp);
        shard.order.remove(&old_key);
        shard.order.insert(new_key, id);
        self.tokens.fetch_add(word.len() as u64, Ordering::Relaxed);
        self.enforce_budgets(&mut shard)?;
        Ok(position)
    }

    /// Ends session `id`: verdict plus the full space accounting,
    /// `==`-identical to the uninterrupted run. The id is retired.
    pub fn finish(&self, id: u64) -> Result<RunOutcome, MuxError> {
        let mut shard = lock_recover(self.shard_of(id));
        self.hydrate(&mut shard, id)?;
        let live = shard.live.remove(&id).expect("hydrated");
        shard.order.remove(&(live.priority, live.stamp));
        shard.live_bytes -= live.cost;
        shard.retired.insert(id);
        self.live_count.fetch_sub(1, Ordering::Relaxed);
        self.finished.fetch_add(1, Ordering::Relaxed);
        Ok(live.session.finish())
    }

    /// Ensures `id` is in the live tier, pulling it from warm bytes or
    /// the spill store if needed. Errors if the id is unknown or retired.
    fn hydrate(&self, shard: &mut Shard<D>, id: u64) -> Result<(), MuxError> {
        if shard.retired.contains(&id) {
            return Err(MuxError::Retired(id));
        }
        if shard.live.contains_key(&id) {
            return Ok(());
        }
        let (cp, hits) = if let Some(entry) = shard.warm.remove(&id) {
            shard.warm_lru.remove(&entry.stamp);
            shard.warm_bytes -= entry.bytes.len();
            let hits = entry.hits;
            (entry.checkpoint()?, hits)
        } else if let Some(store) = &self.spill {
            let mut store = lock_recover(store);
            match store.latest(id)? {
                Some(cp) => {
                    self.spill_hydrations.fetch_add(1, Ordering::Relaxed);
                    // The store persists checkpoints, not engine
                    // bookkeeping: frequency restarts at 1.
                    (cp, 1)
                }
                None => return Err(MuxError::UnknownSession(id)),
            }
        } else {
            return Err(MuxError::UnknownSession(id));
        };
        let cost = cp.byte_len();
        let session = Session::<D>::resume(&cp)?;
        let stamp = self.tick();
        self.admit(shard, id, session, cost, hits, stamp);
        self.hydrations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Evicts lowest-priority live sessions to the warm tier until the
    /// shard is under its live budget, then spills oldest warm entries
    /// to the store until under the warm budget.
    fn enforce_budgets(&self, shard: &mut Shard<D>) -> Result<(), MuxError> {
        while shard.live_bytes > self.shard_live_budget {
            let Some((&(priority, stamp), &victim)) = shard.order.iter().next() else {
                break;
            };
            shard.order.remove(&(priority, stamp));
            // The GDSF clock rises to the evicted priority: any session
            // touched from now on outranks everything already evicted.
            if self.policy == EvictionPolicy::Gdsf {
                shard.inflation = shard.inflation.max(priority);
            }
            let live = shard.live.remove(&victim).expect("order entry is live");
            shard.live_bytes -= live.cost;
            self.live_count.fetch_sub(1, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            let raw = live.session.suspend().into_bytes();
            let uncompressed_len = raw.len();
            // Same policy as the store: compress when it is long enough
            // to plausibly win AND actually smaller.
            let (bytes, compressed) = if raw.len() >= COMPRESS_MIN_LEN {
                let packed = lz4_flex::block::compress(&raw);
                if packed.len() < raw.len() {
                    (packed, true)
                } else {
                    (raw, false)
                }
            } else {
                (raw, false)
            };
            shard.warm_bytes += bytes.len();
            shard.warm.insert(
                victim,
                WarmEntry {
                    bytes,
                    uncompressed_len,
                    compressed,
                    stamp,
                    hits: live.hits,
                },
            );
            shard.warm_lru.insert(stamp, victim);
        }
        if let Some(store) = &self.spill {
            while shard.warm_bytes > self.shard_warm_budget {
                let Some((&stamp, &victim)) = shard.warm_lru.iter().next() else {
                    break;
                };
                shard.warm_lru.remove(&stamp);
                let entry = shard.warm.remove(&victim).expect("warm lru entry");
                shard.warm_bytes -= entry.bytes.len();
                let cp = entry.checkpoint()?;
                lock_recover(store).append(victim, &cp)?;
                self.spills.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Spills every live and warm session into the attached store — the
    /// graceful-shutdown path, so a server restarted on the same store
    /// rehydrates mid-stream sessions instead of losing them. Without a
    /// spill store this is a no-op. Returns the number of sessions
    /// persisted.
    ///
    /// Retirement state is *not* persisted: the store records
    /// checkpoints, so a finished id stays guarded only for the
    /// engine's lifetime. Callers restarting from a spill store must
    /// not re-finish ids they already finished.
    pub fn flush_to_spill(&self) -> Result<u64, MuxError> {
        let Some(store) = &self.spill else {
            return Ok(0);
        };
        let mut flushed = 0u64;
        for shard in &self.shards {
            let mut shard = lock_recover(shard);
            let mut ids: Vec<u64> = shard.live.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                let live = shard.live.remove(&id).expect("listed id is live");
                shard.order.remove(&(live.priority, live.stamp));
                shard.live_bytes -= live.cost;
                self.live_count.fetch_sub(1, Ordering::Relaxed);
                lock_recover(store).append(id, &live.session.suspend())?;
                self.spills.fetch_add(1, Ordering::Relaxed);
                flushed += 1;
            }
            let mut ids: Vec<u64> = shard.warm.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                let entry = shard.warm.remove(&id).expect("listed id is warm");
                shard.warm_lru.remove(&entry.stamp);
                shard.warm_bytes -= entry.bytes.len();
                lock_recover(store).append(id, &entry.checkpoint()?)?;
                self.spills.fetch_add(1, Ordering::Relaxed);
                flushed += 1;
            }
        }
        Ok(flushed)
    }

    /// Point-in-time statistics. Takes every shard lock in turn, so the
    /// tier occupancy numbers are per-shard-consistent.
    pub fn stats(&self) -> MuxStats {
        let mut warm = 0u64;
        let mut live_bytes = 0u64;
        let mut warm_bytes = 0u64;
        for shard in &self.shards {
            let shard = lock_recover(shard);
            warm += shard.warm.len() as u64;
            live_bytes += shard.live_bytes as u64;
            warm_bytes += shard.warm_bytes as u64;
        }
        MuxStats {
            opened: self.opened.load(Ordering::Relaxed),
            finished: self.finished.load(Ordering::Relaxed),
            tokens: self.tokens.load(Ordering::Relaxed),
            live: self.live_count.load(Ordering::Relaxed),
            peak_live: self.peak_live.load(Ordering::Relaxed),
            warm,
            live_bytes,
            warm_bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
            hydrations: self.hydrations.load(Ordering::Relaxed),
            spills: self.spills.load(Ordering::Relaxed),
            spill_hydrations: self.spill_hydrations.load(Ordering::Relaxed),
        }
    }
}

/// Drives a whole fleet through `engine` on `workers` OS threads and
/// returns `(id, outcome)` per session, sorted by id.
///
/// Worker `w` owns fleet indices `i ≡ w (mod workers)` — the same
/// index-strided sharding as the batch scheduler — and feeds its
/// sessions' words round-robin in `chunk`-token slices, so sessions
/// interleave aggressively and churn the LRU. Because each session's
/// tokens arrive in stream order regardless of `workers` and `chunk`,
/// the outcome table is identical at any worker count and chunk size.
pub fn run_fleet<D: Checkpointable + Send>(
    engine: &MuxEngine<D>,
    fleet: Vec<(u64, D, Vec<Sym>)>,
    chunk: usize,
    workers: usize,
) -> Result<Vec<(u64, RunOutcome)>, MuxError> {
    let workers = workers.max(1);
    let chunk = chunk.max(1);
    let mut lanes: Vec<Vec<(u64, D, Vec<Sym>)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, entry) in fleet.into_iter().enumerate() {
        lanes[i % workers].push(entry);
    }
    let run_lane = |lane: Vec<(u64, D, Vec<Sym>)>| -> Result<Vec<(u64, RunOutcome)>, MuxError> {
        let mut words: Vec<(u64, Vec<Sym>, usize)> = Vec::with_capacity(lane.len());
        for (id, decider, word) in lane {
            engine.open(id, decider)?;
            words.push((id, word, 0));
        }
        loop {
            let mut progressed = false;
            for (id, word, pos) in &mut words {
                if *pos < word.len() {
                    let end = (*pos + chunk).min(word.len());
                    engine.feed(*id, &word[*pos..end])?;
                    *pos = end;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        words
            .into_iter()
            .map(|(id, _, _)| Ok((id, engine.finish(id)?)))
            .collect()
    };
    let merged = Mutex::new(Ok(Vec::new()));
    std::thread::scope(|scope| {
        for lane in lanes {
            scope.spawn(|| {
                let lane_result = run_lane(lane);
                let mut merged = lock_recover(&merged);
                match (&mut *merged, lane_result) {
                    (Ok(all), Ok(rows)) => all.extend(rows),
                    (Ok(_), Err(e)) => *merged = Err(e),
                    (Err(_), _) => {}
                }
            });
        }
    });
    let mut rows = merged
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)?;
    rows.sort_unstable_by_key(|(id, _)| *id);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_machine::{run_decider, StoreEverything, StorePredicate};

    fn word(s: &str) -> Vec<Sym> {
        oqsc_lang::token::from_str(s).expect("valid symbols")
    }

    fn store_session(pred: StorePredicate) -> StoreEverything {
        StoreEverything::new(pred)
    }

    fn spill_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("oqsc-mux-unit-{}-{name}.cps", std::process::id()))
    }

    #[test]
    fn evict_on_every_feed_matches_uninterrupted() {
        let w = word("1#01#110#1");
        let reference = run_decider(store_session(StorePredicate::InLdisj), &w);
        let engine = MuxEngine::new(MuxConfig {
            live_bytes_budget: 0,
            warm_bytes_budget: 0,
            shards: 1,
            eviction: EvictionPolicy::default(),
        });
        engine
            .open(7, store_session(StorePredicate::InLdisj))
            .expect("open");
        for sym in &w {
            engine.feed(7, std::slice::from_ref(sym)).expect("feed");
        }
        let out = engine.finish(7).expect("finish");
        assert_eq!(out, reference);
        let stats = engine.stats();
        // Position-0 open + every one of the 10 feeds evicted afterwards.
        assert!(stats.evictions > w.len() as u64, "stats: {stats:?}");
        assert_eq!(stats.hydrations, stats.evictions);
        assert_eq!(stats.live, 0);
        assert_eq!(stats.finished, 1);
    }

    #[test]
    fn spill_tier_round_trips_through_the_store() {
        let path = spill_path("spill");
        let _ = std::fs::remove_file(&path);
        let store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        // live budget 0 + warm budget 0: every eviction spills to disk.
        let engine = MuxEngine::with_spill(
            MuxConfig {
                live_bytes_budget: 0,
                warm_bytes_budget: 0,
                shards: 2,
                eviction: EvictionPolicy::default(),
            },
            store,
        );
        let w = word("01#1#00#");
        let reference = run_decider(store_session(StorePredicate::ContainsOne), &w);
        engine
            .open(1, store_session(StorePredicate::ContainsOne))
            .expect("open");
        for sym in &w {
            engine.feed(1, std::slice::from_ref(sym)).expect("feed");
        }
        assert_eq!(engine.finish(1).expect("finish"), reference);
        let stats = engine.stats();
        assert!(stats.spills > 0, "stats: {stats:?}");
        assert!(stats.spill_hydrations > 0, "stats: {stats:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ids_are_single_use_and_unknowns_are_loud() {
        let engine = MuxEngine::new(MuxConfig::default());
        engine
            .open(3, store_session(StorePredicate::AcceptAll))
            .expect("open");
        assert!(matches!(
            engine.open(3, store_session(StorePredicate::AcceptAll)),
            Err(MuxError::DuplicateSession(3))
        ));
        assert!(matches!(
            engine.feed(4, &word("1")),
            Err(MuxError::UnknownSession(4))
        ));
        assert!(matches!(engine.finish(4), Err(MuxError::UnknownSession(4))));
        engine.finish(3).expect("finish");
        assert!(matches!(
            engine.feed(3, &word("1")),
            Err(MuxError::Retired(3))
        ));
        assert!(matches!(
            engine.open(3, store_session(StorePredicate::AcceptAll)),
            Err(MuxError::Retired(3))
        ));
    }

    #[test]
    fn poisoned_shard_locks_recover_instead_of_wedging() {
        // A handler thread that panics while holding a shard lock
        // poisons the mutex; every later operation on that shard must
        // recover and keep serving the other sessions.
        let engine = MuxEngine::new(MuxConfig {
            live_bytes_budget: 1 << 20,
            warm_bytes_budget: 1 << 20,
            shards: 1, // every id maps to the poisoned shard
            eviction: EvictionPolicy::default(),
        });
        engine
            .open(1, store_session(StorePredicate::ContainsOne))
            .expect("open before poison");
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = engine.shards[0].lock().expect("not yet poisoned");
            panic!("simulated handler panic while holding the shard lock");
        }));
        assert!(poison.is_err(), "the panic must fire");
        assert!(engine.shards[0].lock().is_err(), "lock must be poisoned");
        let w = word("01#1#");
        engine.feed(1, &w).expect("feed across poisoned lock");
        engine
            .open(2, store_session(StorePredicate::AcceptAll))
            .expect("open across poisoned lock");
        let reference = run_decider(store_session(StorePredicate::ContainsOne), &w);
        assert_eq!(engine.finish(1).expect("finish"), reference);
        engine.finish(2).expect("finish the second session");
        assert_eq!(engine.stats().finished, 2);
    }

    #[test]
    fn gdsf_prefers_hot_sessions_over_cold_ones() {
        // Two same-cost sessions: the one touched more often must sit
        // at the high-priority end of the eviction order under GDSF,
        // even though it is *less* recent than the cold one — the
        // exact case where LRU picks the wrong victim.
        let engine = MuxEngine::new(MuxConfig {
            live_bytes_budget: 1 << 20,
            warm_bytes_budget: 1 << 20,
            shards: 1,
            eviction: EvictionPolicy::Gdsf,
        });
        engine
            .open(1, store_session(StorePredicate::AcceptAll))
            .expect("open cold");
        engine
            .open(2, store_session(StorePredicate::AcceptAll))
            .expect("open hot");
        for sym in word("1#01") {
            engine.feed(2, &[sym]).expect("feed hot");
        }
        // Same four symbols in one shot: most recent, but only 2 hits
        // against the hot session's 5.
        engine.feed(1, &word("1#01")).expect("feed cold");
        {
            let shard = lock_recover(&engine.shards[0]);
            let (_, &victim) = shard.order.iter().next().expect("two live sessions");
            assert_eq!(victim, 1, "the cold session must head the eviction order");
        }
        // flush_to_spill without an attached store is a loud no-op.
        assert_eq!(engine.flush_to_spill().expect("no store"), 0);
    }

    #[test]
    fn gdsf_churn_is_outcome_identical_to_lru() {
        let preds = [
            StorePredicate::ContainsOne,
            StorePredicate::IsEmpty,
            StorePredicate::LengthEquals(4),
            StorePredicate::AcceptAll,
            StorePredicate::InLdisj,
        ];
        let fleet_of = || -> Vec<(u64, StoreEverything, Vec<Sym>)> {
            (0..20u64)
                .map(|i| {
                    let w = word(["1#01", "", "0#1#", "1111", "0#0#1#"][i as usize % 5]);
                    (i, store_session(preds[i as usize % 5]), w)
                })
                .collect()
        };
        let reference: Vec<(u64, RunOutcome)> = fleet_of()
            .into_iter()
            .map(|(id, d, w)| (id, run_decider(d, &w)))
            .collect();
        for policy in EvictionPolicy::ALL {
            let engine = MuxEngine::new(MuxConfig {
                live_bytes_budget: 96,
                warm_bytes_budget: 1 << 20,
                shards: 4,
                eviction: policy,
            });
            let rows = run_fleet(&engine, fleet_of(), 2, 4).expect("fleet");
            assert_eq!(rows, reference, "policy = {}", policy.name());
            assert!(engine.stats().evictions > 0, "budget 96 must churn");
        }
    }

    #[test]
    fn flush_to_spill_survives_a_restart() {
        let path = spill_path("flush");
        let _ = std::fs::remove_file(&path);
        let w = word("1#01#110#1");
        let reference = run_decider(store_session(StorePredicate::InLdisj), &w);
        let config = MuxConfig {
            live_bytes_budget: 1 << 20,
            warm_bytes_budget: 1 << 20,
            shards: 2,
            eviction: EvictionPolicy::default(),
        };
        let store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        let engine = MuxEngine::with_spill(config, store);
        for id in [1u64, 2] {
            engine
                .open(id, store_session(StorePredicate::InLdisj))
                .expect("open");
            engine.feed(id, &w[..5]).expect("feed first half");
        }
        assert_eq!(engine.flush_to_spill().expect("flush"), 2);
        assert_eq!(engine.stats().live, 0);
        drop(engine);
        let (store, _report) =
            CheckpointStore::recover_for::<StoreEverything>(&path).expect("recover");
        let engine = MuxEngine::<StoreEverything>::with_spill(config, store);
        for id in [1u64, 2] {
            // No OPEN: each session hydrates from its spilled
            // mid-stream checkpoint and picks up where it left off.
            engine.feed(id, &w[5..]).expect("feed second half");
            assert_eq!(engine.finish(id).expect("finish"), reference);
        }
        assert_eq!(engine.stats().spill_hydrations, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fleet_runner_is_worker_count_invariant() {
        let preds = [
            StorePredicate::ContainsOne,
            StorePredicate::IsEmpty,
            StorePredicate::LengthEquals(4),
            StorePredicate::AcceptAll,
            StorePredicate::InLdisj,
        ];
        let fleet_of = || -> Vec<(u64, StoreEverything, Vec<Sym>)> {
            (0..20u64)
                .map(|i| {
                    let w = word(["1#01", "", "0#1#", "1111", "0#0#1#"][i as usize % 5]);
                    (i, store_session(preds[i as usize % 5]), w)
                })
                .collect()
        };
        let reference: Vec<(u64, RunOutcome)> = fleet_of()
            .into_iter()
            .map(|(id, d, w)| (id, run_decider(d, &w)))
            .collect();
        for workers in [1usize, 2, 8] {
            let engine = MuxEngine::new(MuxConfig {
                live_bytes_budget: 96,
                warm_bytes_budget: 1 << 20,
                shards: 4,
                eviction: EvictionPolicy::default(),
            });
            let rows = run_fleet(&engine, fleet_of(), 2, workers).expect("fleet");
            assert_eq!(rows, reference, "workers = {workers}");
        }
    }
}
