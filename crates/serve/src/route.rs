//! The scale-out front: a consistent-hash router spreading session ids
//! across N backend engines that speak the unchanged line protocol.
//!
//! Per-id verbs (`OPEN`/`FEED`/`FEEDS`/`FINISH`) are forwarded verbatim
//! to the engine [`route_index`] picks, and the engine's response line
//! is relayed verbatim — `ERR` included — so a routed fleet's
//! per-session transcript is byte-identical to a single engine's,
//! regardless of engine count. `STATS` fans out to every engine and
//! answers the field-wise sum; `SHUTDOWN` broadcasts, so one request
//! drains the whole fleet.
//!
//! The hash is rendezvous (highest-random-weight): engine `e` wins id
//! `id` when `mix64(mix64(id) ^ mix64(e))` is maximal. Growing the
//! fleet from N to N+1 engines therefore only moves sessions *onto*
//! the new engine — survivors never shuffle between old engines.
//!
//! Ordering: one client connection holds one connection per backend
//! engine, so a session's requests arrive at its engine in the order
//! the client sent them — the same contract a direct connection gives.

use crate::mux::{mix64, MuxStats};
use crate::protocol::{parse_request, parse_stats_line, stats_line, Request};
use crate::transport::{
    discard_line, read_line_bounded, LineClient, LineStatus, Listener, Stream, MAX_LINE_BYTES,
};
use std::io::{BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// The engine index owning session `id` in a fleet of `engines`
/// backends — rendezvous hashing over the engine's SplitMix64 finalizer.
/// Deterministic and stable: every router instance, and any offline
/// tool, computes the same placement.
pub fn route_index(id: u64, engines: usize) -> usize {
    assert!(engines > 0, "a fleet has at least one engine");
    (0..engines)
        .max_by_key(|&e| mix64(mix64(id) ^ mix64(e as u64)))
        .expect("non-empty range")
}

/// Router sizing: connection-handling threads and the read-poll cadence
/// (same semantics as the server's).
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Connection-handling threads.
    pub threads: usize,
    /// Per-read timeout on client connections.
    pub read_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            threads: 4,
            read_timeout: Duration::from_millis(50),
        }
    }
}

/// A bound, not-yet-running router in front of a fixed engine fleet.
pub struct Router {
    listener: Listener,
    engines: Vec<String>,
    config: RouterConfig,
}

impl Router {
    /// Binds `addr` (Unix path or `host:port`, like the server) in
    /// front of the `engines` addresses. The fleet must be non-empty;
    /// backends are dialed lazily, per client connection, on first use.
    pub fn bind(addr: &str, engines: Vec<String>, config: RouterConfig) -> std::io::Result<Router> {
        if engines.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a router needs at least one engine address",
            ));
        }
        let listener = Listener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Router {
            listener,
            engines,
            config,
        })
    }

    /// The bound address in dialable form (kernel-chosen TCP ports
    /// included).
    pub fn local_addr(&self) -> String {
        self.listener.local_addr()
    }

    /// Routes until a `SHUTDOWN` request, which is broadcast to every
    /// engine before the router itself drains. A Unix socket file is
    /// removed on return.
    pub fn run(self) -> std::io::Result<()> {
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..self.config.threads.max(1) {
                scope.spawn(|| {
                    while !done.load(Ordering::SeqCst) {
                        match self.listener.accept() {
                            Ok(stream) => handle_route_connection(
                                stream,
                                &self.engines,
                                &done,
                                self.config.read_timeout,
                            ),
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                });
            }
        });
        if let Some(path) = self.listener.unix_path() {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// This connection's lazily-dialed backend links, one slot per engine.
/// A backend that errors is dropped from the cache so the next request
/// for it redials instead of reusing a dead connection.
struct Backends<'a> {
    addrs: &'a [String],
    links: Vec<Option<LineClient>>,
}

impl<'a> Backends<'a> {
    fn new(addrs: &'a [String]) -> Self {
        Backends {
            links: (0..addrs.len()).map(|_| None).collect(),
            addrs,
        }
    }

    /// Sends `line` to engine `index` and returns its response line,
    /// dialing on first use.
    fn ask(&mut self, index: usize, line: &str) -> std::io::Result<String> {
        if self.links[index].is_none() {
            self.links[index] = Some(LineClient::connect(&self.addrs[index])?);
        }
        let link = self.links[index].as_mut().expect("just dialed");
        match link.ask(line) {
            Ok(response) => Ok(response),
            Err(e) => {
                self.links[index] = None;
                Err(e)
            }
        }
    }
}

/// Serves one client connection, forwarding per-id verbs to their
/// engines and fanning out the fleet-wide ones.
fn handle_route_connection(
    stream: Stream,
    engines: &[String],
    done: &AtomicBool,
    read_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut backends = Backends::new(engines);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let status = match read_line_bounded(&mut reader, &mut buf) {
            Ok(status) => status,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if done.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let response = match status {
            LineStatus::Closed => return,
            LineStatus::Overflow => {
                loop {
                    match discard_line(&mut reader) {
                        Ok(true) => break,
                        Ok(false) => return,
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            if done.load(Ordering::SeqCst) {
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                }
                buf.clear();
                format!("ERR line too long (max {MAX_LINE_BYTES} bytes)")
            }
            LineStatus::Line => {
                let text = std::str::from_utf8(&buf).map(|s| s.trim().to_string());
                buf.clear();
                match text {
                    Ok(request) if request.is_empty() => continue,
                    Ok(request) => route_one(&request, &mut backends, done),
                    Err(_) => "ERR request is not valid UTF-8".to_string(),
                }
            }
        };
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if done.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Routes one request line and renders the response line.
fn route_one(line: &str, backends: &mut Backends<'_>, done: &AtomicBool) -> String {
    // Parse locally first: malformed lines are answered here instead of
    // burning an engine round trip, and the id tells us where to go.
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(msg) => return format!("ERR {msg}"),
    };
    let forward_to = |backends: &mut Backends<'_>, id: u64| -> String {
        let index = route_index(id, backends.addrs.len());
        match backends.ask(index, line) {
            // Relayed verbatim, ERR included: the routed transcript is
            // byte-identical to a direct connection's.
            Ok(response) => response,
            Err(e) => format!("ERR engine {} unreachable: {e}", backends.addrs[index]),
        }
    };
    match request {
        Request::Open { id, .. } | Request::Feed { id, .. } | Request::Feeds { id, .. } => {
            forward_to(backends, id)
        }
        Request::Finish { id } => forward_to(backends, id),
        Request::Stats => {
            let mut total = MuxStats::default();
            for index in 0..backends.addrs.len() {
                let response = match backends.ask(index, "STATS") {
                    Ok(r) => r,
                    Err(e) => {
                        return format!("ERR engine {} unreachable: {e}", backends.addrs[index])
                    }
                };
                let stats = match parse_stats_line(&response) {
                    Ok(s) => s,
                    Err(msg) => return format!("ERR engine {}: {msg}", backends.addrs[index]),
                };
                total.opened += stats.opened;
                total.finished += stats.finished;
                total.tokens += stats.tokens;
                total.live += stats.live;
                // Summed per-engine peaks: an upper bound on the true
                // fleet-wide concurrent peak, which no single box saw.
                total.peak_live += stats.peak_live;
                total.warm += stats.warm;
                total.evictions += stats.evictions;
                total.hydrations += stats.hydrations;
                total.spills += stats.spills;
                total.spill_hydrations += stats.spill_hydrations;
            }
            stats_line(&total)
        }
        Request::Shutdown => {
            // Broadcast so one SHUTDOWN drains the whole fleet; engines
            // that fail to answer are reported, not retried.
            let mut failures = Vec::new();
            for index in 0..backends.addrs.len() {
                match backends.ask(index, "SHUTDOWN") {
                    Ok(_) => {}
                    Err(_) => failures.push(backends.addrs[index].clone()),
                }
            }
            done.store(true, Ordering::SeqCst);
            if failures.is_empty() {
                "OK shutdown".to_string()
            } else {
                format!(
                    "ERR shutdown incomplete: unreachable {}",
                    failures.join(",")
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_growth_only_moves_sessions_onto_the_new_engine() {
        for engines in 1usize..6 {
            for id in 0..500u64 {
                let before = route_index(id, engines);
                let after = route_index(id, engines + 1);
                assert!(
                    after == before || after == engines,
                    "id {id}: {before} -> {after} with {engines}+1 engines"
                );
            }
        }
    }

    #[test]
    fn routing_spreads_ids_across_the_fleet() {
        let mut counts = [0usize; 4];
        for id in 0..4000u64 {
            counts[route_index(id, 4)] += 1;
        }
        for (engine, &n) in counts.iter().enumerate() {
            assert!(
                (600..=1400).contains(&n),
                "engine {engine} got {n} of 4000 ids"
            );
        }
    }
}
