//! The serving catalog: every decider the repo can stream, behind one
//! checkpointable type.
//!
//! The text protocol opens sessions by *name* (`OPEN <id> <kind>
//! <seed>`), so the engine needs a single concrete decider type covering
//! the whole tree: the seven deciders of the reproduction, with the
//! three quantum ones instantiated over all four backends.
//! [`AnyDecider`] is that closed sum. Its checkpoint encoding prefixes
//! the inner decider's state with a one-byte kind tag, so a mixed fleet
//! shares one [`MuxEngine`](crate::MuxEngine) — and one spill store —
//! regardless of which kinds it mixes.
//!
//! Construction is deterministic: `(kind, seed)` fully determines the
//! decider (the seed feeds a [`StdRng`], exactly like the sweep
//! registry's per-instance seeding), which is what makes served verdicts
//! reproducible against direct [`run_decider_stream`] runs.
//!
//! [`run_decider_stream`]: oqsc_machine::run_decider_stream

use oqsc_core::{
    ComplementRecognizer, ConsistencyChecker, FormatChecker, GroverStreamer, LdisjRecognizer,
    Prop37Decider, SketchDecider,
};
use oqsc_lang::Sym;
use oqsc_machine::{put_u8, ByteReader, CheckpointError, Checkpointable, StreamingDecider};
use oqsc_quantum::{AdaptiveState, ParallelStateVector, SparseState, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Amplification copies for the served L_DISJ recognizer (kept small:
/// serving cost scales linearly in copies).
pub const LDISJ_REPS: usize = 2;

/// Coordinate budget for the served sub-√m sketch baseline.
pub const SKETCH_BUDGET: usize = 4;

/// Every openable decider kind, by protocol name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeciderKind {
    /// `format` — A1 shape checker (classical).
    Format,
    /// `consistency` — A2 fingerprint consistency checker (classical).
    Consistency,
    /// `prop37` — Proposition 3.7 block decider (classical).
    Prop37,
    /// `sketch` — sub-√m sampling sketch baseline (classical).
    Sketch,
    /// `complement-dense` — Theorem 3.4 recognizer, dense backend.
    ComplementDense,
    /// `complement-parallel` — recognizer on the parallel dense backend.
    ComplementParallel,
    /// `complement-sparse` — recognizer on the sparse backend.
    ComplementSparse,
    /// `complement-adaptive` — recognizer on the adaptive backend.
    ComplementAdaptive,
    /// `grover-dense` — A3 Grover streamer, dense backend.
    GroverDense,
    /// `grover-parallel` — A3 on the parallel dense backend.
    GroverParallel,
    /// `grover-sparse` — A3 on the sparse backend.
    GroverSparse,
    /// `grover-adaptive` — A3 on the adaptive backend.
    GroverAdaptive,
    /// `ldisj-dense` — amplified L_DISJ recognizer, dense backend.
    LdisjDense,
    /// `ldisj-parallel` — amplified recognizer, parallel dense backend.
    LdisjParallel,
    /// `ldisj-sparse` — amplified recognizer, sparse backend.
    LdisjSparse,
    /// `ldisj-adaptive` — amplified recognizer, adaptive backend.
    LdisjAdaptive,
}

impl DeciderKind {
    /// Every kind, in tag order (the index is the checkpoint tag byte).
    pub const ALL: [DeciderKind; 16] = [
        DeciderKind::Format,
        DeciderKind::Consistency,
        DeciderKind::Prop37,
        DeciderKind::Sketch,
        DeciderKind::ComplementDense,
        DeciderKind::ComplementParallel,
        DeciderKind::ComplementSparse,
        DeciderKind::ComplementAdaptive,
        DeciderKind::GroverDense,
        DeciderKind::GroverParallel,
        DeciderKind::GroverSparse,
        DeciderKind::GroverAdaptive,
        DeciderKind::LdisjDense,
        DeciderKind::LdisjParallel,
        DeciderKind::LdisjSparse,
        DeciderKind::LdisjAdaptive,
    ];

    /// The protocol name (`OPEN <id> <kind> <seed>`).
    pub fn name(self) -> &'static str {
        match self {
            DeciderKind::Format => "format",
            DeciderKind::Consistency => "consistency",
            DeciderKind::Prop37 => "prop37",
            DeciderKind::Sketch => "sketch",
            DeciderKind::ComplementDense => "complement-dense",
            DeciderKind::ComplementParallel => "complement-parallel",
            DeciderKind::ComplementSparse => "complement-sparse",
            DeciderKind::ComplementAdaptive => "complement-adaptive",
            DeciderKind::GroverDense => "grover-dense",
            DeciderKind::GroverParallel => "grover-parallel",
            DeciderKind::GroverSparse => "grover-sparse",
            DeciderKind::GroverAdaptive => "grover-adaptive",
            DeciderKind::LdisjDense => "ldisj-dense",
            DeciderKind::LdisjParallel => "ldisj-parallel",
            DeciderKind::LdisjSparse => "ldisj-sparse",
            DeciderKind::LdisjAdaptive => "ldisj-adaptive",
        }
    }

    /// Parses a protocol name.
    pub fn from_name(name: &str) -> Option<DeciderKind> {
        DeciderKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The checkpoint tag byte (index into [`Self::ALL`]).
    fn tag(self) -> u8 {
        DeciderKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("kind is in ALL") as u8
    }

    /// Builds the decider deterministically from `seed`.
    pub fn build(self, seed: u64) -> AnyDecider {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            DeciderKind::Format => AnyDecider::Format(FormatChecker::new()),
            DeciderKind::Consistency => AnyDecider::Consistency(ConsistencyChecker::new(&mut rng)),
            DeciderKind::Prop37 => AnyDecider::Prop37(Prop37Decider::new(&mut rng)),
            DeciderKind::Sketch => AnyDecider::Sketch(SketchDecider::new(SKETCH_BUDGET, &mut rng)),
            DeciderKind::ComplementDense => {
                AnyDecider::ComplementDense(ComplementRecognizer::new_in(&mut rng))
            }
            DeciderKind::ComplementParallel => {
                AnyDecider::ComplementParallel(ComplementRecognizer::new_in(&mut rng))
            }
            DeciderKind::ComplementSparse => {
                AnyDecider::ComplementSparse(ComplementRecognizer::new_in(&mut rng))
            }
            DeciderKind::ComplementAdaptive => {
                AnyDecider::ComplementAdaptive(ComplementRecognizer::new_in(&mut rng))
            }
            DeciderKind::GroverDense => AnyDecider::GroverDense(GroverStreamer::new_in(&mut rng)),
            DeciderKind::GroverParallel => {
                AnyDecider::GroverParallel(GroverStreamer::new_in(&mut rng))
            }
            DeciderKind::GroverSparse => AnyDecider::GroverSparse(GroverStreamer::new_in(&mut rng)),
            DeciderKind::GroverAdaptive => {
                AnyDecider::GroverAdaptive(GroverStreamer::new_in(&mut rng))
            }
            DeciderKind::LdisjDense => {
                AnyDecider::LdisjDense(LdisjRecognizer::new_in(LDISJ_REPS, &mut rng))
            }
            DeciderKind::LdisjParallel => {
                AnyDecider::LdisjParallel(LdisjRecognizer::new_in(LDISJ_REPS, &mut rng))
            }
            DeciderKind::LdisjSparse => {
                AnyDecider::LdisjSparse(LdisjRecognizer::new_in(LDISJ_REPS, &mut rng))
            }
            DeciderKind::LdisjAdaptive => {
                AnyDecider::LdisjAdaptive(LdisjRecognizer::new_in(LDISJ_REPS, &mut rng))
            }
        }
    }
}

/// The closed sum of every servable decider (see the module docs).
#[derive(Clone, Debug)]
pub enum AnyDecider {
    /// A1 shape checker.
    Format(FormatChecker),
    /// A2 consistency checker.
    Consistency(ConsistencyChecker),
    /// Proposition 3.7 block decider.
    Prop37(Prop37Decider),
    /// Sub-√m sketch baseline.
    Sketch(SketchDecider),
    /// Complement recognizer, dense backend.
    ComplementDense(ComplementRecognizer<StateVector>),
    /// Complement recognizer, parallel dense backend.
    ComplementParallel(ComplementRecognizer<ParallelStateVector>),
    /// Complement recognizer, sparse backend.
    ComplementSparse(ComplementRecognizer<SparseState>),
    /// Complement recognizer, adaptive backend.
    ComplementAdaptive(ComplementRecognizer<AdaptiveState>),
    /// A3 streamer, dense backend.
    GroverDense(GroverStreamer<StateVector>),
    /// A3 streamer, parallel dense backend.
    GroverParallel(GroverStreamer<ParallelStateVector>),
    /// A3 streamer, sparse backend.
    GroverSparse(GroverStreamer<SparseState>),
    /// A3 streamer, adaptive backend.
    GroverAdaptive(GroverStreamer<AdaptiveState>),
    /// Amplified L_DISJ recognizer, dense backend.
    LdisjDense(LdisjRecognizer<StateVector>),
    /// Amplified L_DISJ recognizer, parallel dense backend.
    LdisjParallel(LdisjRecognizer<ParallelStateVector>),
    /// Amplified L_DISJ recognizer, sparse backend.
    LdisjSparse(LdisjRecognizer<SparseState>),
    /// Amplified L_DISJ recognizer, adaptive backend.
    LdisjAdaptive(LdisjRecognizer<AdaptiveState>),
}

/// Dispatches `$body` over every variant's inner decider.
macro_rules! with_inner {
    ($self:expr, $d:ident => $body:expr) => {
        match $self {
            AnyDecider::Format($d) => $body,
            AnyDecider::Consistency($d) => $body,
            AnyDecider::Prop37($d) => $body,
            AnyDecider::Sketch($d) => $body,
            AnyDecider::ComplementDense($d) => $body,
            AnyDecider::ComplementParallel($d) => $body,
            AnyDecider::ComplementSparse($d) => $body,
            AnyDecider::ComplementAdaptive($d) => $body,
            AnyDecider::GroverDense($d) => $body,
            AnyDecider::GroverParallel($d) => $body,
            AnyDecider::GroverSparse($d) => $body,
            AnyDecider::GroverAdaptive($d) => $body,
            AnyDecider::LdisjDense($d) => $body,
            AnyDecider::LdisjParallel($d) => $body,
            AnyDecider::LdisjSparse($d) => $body,
            AnyDecider::LdisjAdaptive($d) => $body,
        }
    };
}

impl AnyDecider {
    /// The kind this decider was built as.
    pub fn kind(&self) -> DeciderKind {
        match self {
            AnyDecider::Format(_) => DeciderKind::Format,
            AnyDecider::Consistency(_) => DeciderKind::Consistency,
            AnyDecider::Prop37(_) => DeciderKind::Prop37,
            AnyDecider::Sketch(_) => DeciderKind::Sketch,
            AnyDecider::ComplementDense(_) => DeciderKind::ComplementDense,
            AnyDecider::ComplementParallel(_) => DeciderKind::ComplementParallel,
            AnyDecider::ComplementSparse(_) => DeciderKind::ComplementSparse,
            AnyDecider::ComplementAdaptive(_) => DeciderKind::ComplementAdaptive,
            AnyDecider::GroverDense(_) => DeciderKind::GroverDense,
            AnyDecider::GroverParallel(_) => DeciderKind::GroverParallel,
            AnyDecider::GroverSparse(_) => DeciderKind::GroverSparse,
            AnyDecider::GroverAdaptive(_) => DeciderKind::GroverAdaptive,
            AnyDecider::LdisjDense(_) => DeciderKind::LdisjDense,
            AnyDecider::LdisjParallel(_) => DeciderKind::LdisjParallel,
            AnyDecider::LdisjSparse(_) => DeciderKind::LdisjSparse,
            AnyDecider::LdisjAdaptive(_) => DeciderKind::LdisjAdaptive,
        }
    }
}

impl StreamingDecider for AnyDecider {
    fn feed(&mut self, sym: Sym) {
        with_inner!(self, d => d.feed(sym))
    }

    fn decide(&mut self) -> bool {
        with_inner!(self, d => d.decide())
    }

    fn space_bits(&self) -> usize {
        with_inner!(self, d => d.space_bits())
    }

    fn peak_qubits(&self) -> usize {
        with_inner!(self, d => d.peak_qubits())
    }

    fn peak_amplitudes(&self) -> usize {
        with_inner!(self, d => d.peak_amplitudes())
    }

    fn snapshot(&self) -> Vec<u8> {
        with_inner!(self, d => d.snapshot())
    }

    fn feed_all(&mut self, word: &[Sym]) {
        // One enum dispatch per batch, not per token — the fast path
        // Session::feed_slice rides on.
        with_inner!(self, d => d.feed_all(word))
    }
}

impl Checkpointable for AnyDecider {
    const TYPE_TAG: &'static str = "AnyDecider";

    fn write_state(&self, out: &mut Vec<u8>) {
        put_u8(out, self.kind().tag());
        with_inner!(self, d => d.write_state(out))
    }

    fn read_state(r: &mut ByteReader) -> Result<Self, CheckpointError> {
        let tag = r.read_u8()?;
        let kind = *DeciderKind::ALL
            .get(tag as usize)
            .ok_or_else(|| CheckpointError::Malformed(format!("bad decider kind tag {tag}")))?;
        Ok(match kind {
            DeciderKind::Format => AnyDecider::Format(FormatChecker::read_state(r)?),
            DeciderKind::Consistency => AnyDecider::Consistency(ConsistencyChecker::read_state(r)?),
            DeciderKind::Prop37 => AnyDecider::Prop37(Prop37Decider::read_state(r)?),
            DeciderKind::Sketch => AnyDecider::Sketch(SketchDecider::read_state(r)?),
            DeciderKind::ComplementDense => {
                AnyDecider::ComplementDense(ComplementRecognizer::read_state(r)?)
            }
            DeciderKind::ComplementParallel => {
                AnyDecider::ComplementParallel(ComplementRecognizer::read_state(r)?)
            }
            DeciderKind::ComplementSparse => {
                AnyDecider::ComplementSparse(ComplementRecognizer::read_state(r)?)
            }
            DeciderKind::ComplementAdaptive => {
                AnyDecider::ComplementAdaptive(ComplementRecognizer::read_state(r)?)
            }
            DeciderKind::GroverDense => AnyDecider::GroverDense(GroverStreamer::read_state(r)?),
            DeciderKind::GroverParallel => {
                AnyDecider::GroverParallel(GroverStreamer::read_state(r)?)
            }
            DeciderKind::GroverSparse => AnyDecider::GroverSparse(GroverStreamer::read_state(r)?),
            DeciderKind::GroverAdaptive => {
                AnyDecider::GroverAdaptive(GroverStreamer::read_state(r)?)
            }
            DeciderKind::LdisjDense => AnyDecider::LdisjDense(LdisjRecognizer::read_state(r)?),
            DeciderKind::LdisjParallel => {
                AnyDecider::LdisjParallel(LdisjRecognizer::read_state(r)?)
            }
            DeciderKind::LdisjSparse => AnyDecider::LdisjSparse(LdisjRecognizer::read_state(r)?),
            DeciderKind::LdisjAdaptive => {
                AnyDecider::LdisjAdaptive(LdisjRecognizer::read_state(r)?)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_machine::{run_decider, Session};

    #[test]
    fn names_round_trip_and_tags_are_stable() {
        for (i, kind) in DeciderKind::ALL.into_iter().enumerate() {
            assert_eq!(DeciderKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.tag() as usize, i);
            assert_eq!(kind.build(42).kind(), kind);
        }
        assert_eq!(DeciderKind::from_name("no-such-kind"), None);
    }

    #[test]
    fn any_decider_checkpoints_transparently_for_every_kind() {
        let word = oqsc_lang::token::from_str("1#01#110#1").expect("syms");
        for kind in DeciderKind::ALL {
            let reference = run_decider(kind.build(7), &word);
            for cut in [0, 3, word.len()] {
                let mut s = Session::new(kind.build(7));
                s.feed_all(&word[..cut]);
                let cp = s.suspend();
                let mut resumed = Session::<AnyDecider>::resume(&cp).expect("resumes");
                resumed.feed_all(&word[cut..]);
                assert_eq!(resumed.finish(), reference, "{} cut {cut}", kind.name());
            }
        }
    }

    #[test]
    fn bad_kind_tags_are_rejected() {
        let mut bytes = Vec::new();
        put_u8(&mut bytes, 200);
        assert!(matches!(
            AnyDecider::read_state(&mut ByteReader::new(&bytes)),
            Err(CheckpointError::Malformed(_))
        ));
    }
}
