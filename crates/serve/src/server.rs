//! The serving front end: a std-only thread pool accepting connections
//! on a Unix socket *or* a TCP port and speaking the line protocol
//! against one shared [`MuxEngine`].
//!
//! The listener runs non-blocking; every accept thread polls
//! accept-or-sleep and checks a shared shutdown flag, so a single
//! `SHUTDOWN` request (from any connection) drains the whole pool
//! without signals or self-connects. Per-session ordering is the
//! client's contract — the engine serializes operations on one id
//! through its shard lock, and a client that wants a session's tokens
//! in stream order must send them in order on one connection.
//!
//! Request lines are read through the bounded machinery in
//! [`crate::transport`]: an overlong line or a non-UTF8 one costs the
//! server one `ERR` response and a bounded resync, never a panic, a
//! dropped connection, or an unbounded allocation.
//!
//! With a spill store attached, a graceful `SHUTDOWN` flushes every
//! live and warm session into the store, so a server restarted on the
//! same store rehydrates mid-stream sessions instead of losing them.

use crate::catalog::AnyDecider;
use crate::mux::{MuxConfig, MuxEngine, MuxStats};
use crate::protocol::{outcome_line, parse_request, stats_line, Request};
use crate::transport::{
    discard_line, read_line_bounded, LineStatus, Listener, Stream, MAX_LINE_BYTES,
};
use oqsc_machine::CheckpointStore;
use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

// Re-exported from its original home so existing `crate::server`
// importers keep working; the implementation lives with its users in
// the transport module now.
pub use crate::transport::bind_unix_socket;

/// Server sizing: protocol threads, the engine's tier budgets, and the
/// handler pool's read-poll cadence.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connection-handling threads (each owns the accept loop in turn).
    pub threads: usize,
    /// The multiplexing engine's budgets.
    pub mux: MuxConfig,
    /// Per-read timeout on handler connections. Blocked reads wake at
    /// this cadence to notice the shutdown flag; partial request lines
    /// survive the timeout, so slow writers are never truncated.
    pub read_timeout: Duration,
    /// Checkpoint store path for the spill tier. Opened if it exists
    /// (recovering a torn tail), created otherwise; on graceful
    /// shutdown every resident session is flushed into it.
    pub spill_store: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            mux: MuxConfig::default(),
            read_timeout: Duration::from_millis(50),
            spill_store: None,
        }
    }
}

/// A bound, not-yet-running server. Binding is separate from running so
/// callers (the CLI, tests) can report readiness before blocking.
pub struct Server {
    listener: Listener,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` — `host:port` for TCP, a filesystem path for a Unix
    /// socket. Unix paths get the stale-vs-live discipline of
    /// [`bind_unix_socket`]; a path a live server answers on is refused.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let listener = Listener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server { listener, config })
    }

    /// The bound address in dialable form — for TCP the *actual*
    /// address, so binding port `0` reports the kernel-chosen port.
    pub fn local_addr(&self) -> String {
        self.listener.local_addr()
    }

    /// Serves until a `SHUTDOWN` request, then returns the engine's
    /// final statistics. With a spill store attached, resident sessions
    /// are flushed into it before returning; a Unix socket file is
    /// removed on return.
    pub fn run(self) -> std::io::Result<MuxStats> {
        let engine = match &self.config.spill_store {
            Some(path) => {
                let store = if path.exists() {
                    CheckpointStore::recover_for::<AnyDecider>(path).map(|(store, _report)| store)
                } else {
                    CheckpointStore::create_for::<AnyDecider>(path)
                }
                .map_err(|e| std::io::Error::other(e.to_string()))?;
                MuxEngine::<AnyDecider>::with_spill(self.config.mux, store)
            }
            None => MuxEngine::<AnyDecider>::new(self.config.mux),
        };
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..self.config.threads.max(1) {
                scope.spawn(|| {
                    while !done.load(Ordering::SeqCst) {
                        match self.listener.accept() {
                            Ok(stream) => {
                                handle_connection(stream, &engine, &done, self.config.read_timeout)
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                });
            }
        });
        engine
            .flush_to_spill()
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        if let Some(path) = self.listener.unix_path() {
            let _ = std::fs::remove_file(path);
        }
        Ok(engine.stats())
    }
}

/// Serves one connection: request line in, response line out, until EOF
/// or a shutdown from anywhere. Hostile input — overlong lines, invalid
/// UTF-8 — earns an `ERR` and leaves the connection usable.
fn handle_connection(
    stream: Stream,
    engine: &MuxEngine<AnyDecider>,
    done: &AtomicBool,
    read_timeout: Duration,
) {
    // Line reads must be able to notice the shutdown flag; a short read
    // timeout turns blocked reads into polls.
    let _ = stream.set_read_timeout(Some(read_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let status = match read_line_bounded(&mut reader, &mut buf) {
            Ok(status) => status,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // A timed-out read may already have buffered a request
                // prefix in `buf`; keep it for the next poll — a client
                // writing one byte per interval must never see its
                // request truncated at a timeout boundary.
                if done.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let response = match status {
            LineStatus::Closed => return, // client hung up (an unterminated partial dies with it)
            LineStatus::Overflow => {
                // Swallow the rest of the oversized line in bounded
                // chunks (re-polling through timeouts), then answer
                // once the connection is back in sync.
                loop {
                    match discard_line(&mut reader) {
                        Ok(true) => break,
                        Ok(false) => return, // EOF mid-overflow
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            if done.load(Ordering::SeqCst) {
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                }
                buf.clear();
                format!("ERR line too long (max {MAX_LINE_BYTES} bytes)")
            }
            LineStatus::Line => {
                let text = std::str::from_utf8(&buf).map(|s| s.trim().to_string());
                buf.clear();
                match text {
                    Ok(request) if request.is_empty() => continue,
                    Ok(request) => respond(engine, &request, done),
                    Err(_) => "ERR request is not valid UTF-8".to_string(),
                }
            }
        };
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if done.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Applies one request to the engine and renders the response line.
fn respond(engine: &MuxEngine<AnyDecider>, line: &str, done: &AtomicBool) -> String {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(msg) => return format!("ERR {msg}"),
    };
    match request {
        Request::Open { id, kind, seed } => match engine.open(id, kind.build(seed)) {
            Ok(()) => format!("OK {id} 0"),
            Err(e) => format!("ERR {e}"),
        },
        Request::Feed { id, word } => match engine.feed(id, &word) {
            Ok(position) => format!("OK {id} {position}"),
            Err(e) => format!("ERR {e}"),
        },
        // The batched fast path: the whole batch lands on the session
        // as one `feed_slice` call and one budget-enforcement pass.
        Request::Feeds { id, words } => match engine.feed(id, &words.concat()) {
            Ok(position) => format!("OK {id} {position}"),
            Err(e) => format!("ERR {e}"),
        },
        Request::Finish { id } => match engine.finish(id) {
            Ok(out) => outcome_line(id, &out),
            Err(e) => format!("ERR {e}"),
        },
        Request::Stats => stats_line(&engine.stats()),
        Request::Shutdown => {
            done.store(true, Ordering::SeqCst);
            "OK shutdown".to_string()
        }
    }
}
