//! The Unix-socket front end: a std-only thread pool accepting
//! connections and speaking the line protocol against one shared
//! [`MuxEngine`].
//!
//! The listener runs non-blocking; every accept thread polls
//! accept-or-sleep and checks a shared shutdown flag, so a single
//! `SHUTDOWN` request (from any connection) drains the whole pool
//! without signals or self-connects. Per-session ordering is the
//! client's contract — the engine serializes operations on one id
//! through its shard lock, and a client that wants a session's tokens
//! in stream order must send them in order on one connection.

use crate::catalog::AnyDecider;
use crate::mux::{MuxConfig, MuxEngine, MuxStats};
use crate::protocol::{outcome_line, parse_request, stats_line, Request};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Server sizing: protocol threads and the engine's tier budgets.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Connection-handling threads (each owns the accept loop in turn).
    pub threads: usize,
    /// The multiplexing engine's budgets.
    pub mux: MuxConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            mux: MuxConfig::default(),
        }
    }
}

/// A bound, not-yet-running server. Binding is separate from running so
/// callers (the CLI, tests) can report readiness before blocking.
pub struct Server {
    listener: UnixListener,
    path: PathBuf,
    config: ServerConfig,
}

/// Binds a Unix socket at `path`, replacing a *stale* socket file left
/// by a dead server — and only a stale one. A leftover path is
/// probe-connected first: if a live server answers, binding fails with
/// [`AddrInUse`](std::io::ErrorKind::AddrInUse) instead of silently
/// clobbering it out from under its clients, and a path that is not a
/// socket at all (a regular file, a directory) is never removed.
///
/// Shared by [`Server::bind`] and the distributed sweep fabric's
/// coordinator listener, so every line-protocol endpoint in the
/// workspace gets the same stale-vs-live discipline.
pub fn bind_unix_socket(path: &Path) -> std::io::Result<UnixListener> {
    if let Ok(meta) = std::fs::symlink_metadata(path) {
        use std::os::unix::fs::FileTypeExt;
        if !meta.file_type().is_socket() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!(
                    "{} exists and is not a socket; refusing to replace it",
                    path.display()
                ),
            ));
        }
        if UnixStream::connect(path).is_ok() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!(
                    "a live server is already listening on {}; shut it down first",
                    path.display()
                ),
            ));
        }
        // Nothing answered: a stale socket file from a dead server.
        std::fs::remove_file(path)?;
    }
    UnixListener::bind(path)
}

impl Server {
    /// Binds `path`, replacing any stale socket file left by a dead
    /// server; a path a live server answers on is refused (see
    /// [`bind_unix_socket`]).
    pub fn bind(path: impl AsRef<Path>, config: ServerConfig) -> std::io::Result<Server> {
        let path = path.as_ref().to_path_buf();
        let listener = bind_unix_socket(&path)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            path,
            config,
        })
    }

    /// The bound socket path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Serves until a `SHUTDOWN` request, then returns the engine's
    /// final statistics. The socket file is removed on return.
    pub fn run(self) -> std::io::Result<MuxStats> {
        let engine = MuxEngine::<AnyDecider>::new(self.config.mux);
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..self.config.threads.max(1) {
                scope.spawn(|| {
                    while !done.load(Ordering::SeqCst) {
                        match self.listener.accept() {
                            Ok((stream, _)) => handle_connection(stream, &engine, &done),
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                });
            }
        });
        let _ = std::fs::remove_file(&self.path);
        Ok(engine.stats())
    }
}

/// Serves one connection: request line in, response line out, until EOF
/// or a shutdown from anywhere.
fn handle_connection(stream: UnixStream, engine: &MuxEngine<AnyDecider>, done: &AtomicBool) {
    // Line reads must be able to notice the shutdown flag; a short read
    // timeout turns blocked reads into polls.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // client hung up (an unterminated partial request dies with it)
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // A timed-out read_line may already have appended a
                // request prefix to `line`; keep it for the next poll —
                // a client writing one byte per 60 ms must never see
                // its request truncated at a timeout boundary.
                if done.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let request = line.trim().to_string();
        line.clear();
        if request.is_empty() {
            continue;
        }
        let response = respond(engine, &request, done);
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if done.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Applies one request to the engine and renders the response line.
fn respond(engine: &MuxEngine<AnyDecider>, line: &str, done: &AtomicBool) -> String {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(msg) => return format!("ERR {msg}"),
    };
    match request {
        Request::Open { id, kind, seed } => match engine.open(id, kind.build(seed)) {
            Ok(()) => format!("OK {id} 0"),
            Err(e) => format!("ERR {e}"),
        },
        Request::Feed { id, word } => match engine.feed(id, &word) {
            Ok(position) => format!("OK {id} {position}"),
            Err(e) => format!("ERR {e}"),
        },
        Request::Finish { id } => match engine.finish(id) {
            Ok(out) => outcome_line(id, &out),
            Err(e) => format!("ERR {e}"),
        },
        Request::Stats => stats_line(&engine.stats()),
        Request::Shutdown => {
            done.store(true, Ordering::SeqCst);
            "OK shutdown".to_string()
        }
    }
}
