//! Boyer–Brassard–Høyer–Tapp search with an unknown number of solutions.
//!
//! The BCW protocol (and hence procedure A3) cannot know the number of
//! intersecting coordinates `t` in advance. The paper handles this with
//! the single-shot randomized variant analyzed by [BBHT 98]: draw `j`
//! uniformly from `{0, …, M−1}` with `M = √N`, run `j` Grover iterations
//! and measure; the detection probability is at least 1/4 for every
//! `0 < t < N` (see [`crate::analysis::averaged_success`]).
//!
//! For completeness this module also implements the full BBHT *search*
//! loop (exponentially growing iteration budget), which finds a marked
//! item in expected `O(√(N/t))` oracle iterations.

use crate::search::GroverSim;
use rand::Rng;

/// Outcome of the paper's single-shot random-`j` detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetectionOutcome {
    /// The drawn iteration count `j`.
    pub j: usize,
    /// The measured index.
    pub measured: usize,
    /// Whether the measured index was marked (intersection detected).
    pub detected: bool,
}

/// Single-shot detection as in procedure A3: draw `j` uniform in
/// `{0, …, m_rounds−1}`, iterate, measure, report whether the outcome is
/// marked.
pub fn random_j_detection<R: Rng + ?Sized>(
    sim: &GroverSim,
    m_rounds: usize,
    rng: &mut R,
) -> DetectionOutcome {
    assert!(m_rounds >= 1);
    let j = rng.gen_range(0..m_rounds);
    let measured = sim.sample(j, rng);
    DetectionOutcome {
        j,
        measured,
        detected: sim.is_marked(measured),
    }
}

/// Exact detection probability of the single-shot scheme (averaging the
/// exact simulated success over `j`), for validating the closed form.
pub fn random_j_detection_probability(sim: &GroverSim, m_rounds: usize) -> f64 {
    (0..m_rounds)
        .map(|j| sim.success_probability(j))
        .sum::<f64>()
        / m_rounds as f64
}

/// Result of the full BBHT search loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BbhtResult {
    /// A marked index, if one was found.
    pub found: Option<usize>,
    /// Total Grover iterations (oracle calls) spent.
    pub total_iterations: usize,
    /// Number of measure-and-restart rounds.
    pub rounds: usize,
}

/// The BBHT algorithm with growth factor `λ = 6/5`: find a marked item
/// when `t` is unknown, giving up after the timeout that certifies
/// `t = 0` with high probability.
pub fn bbht_search<R: Rng + ?Sized>(sim: &GroverSim, rng: &mut R) -> BbhtResult {
    let n = sim.domain() as f64;
    let sqrt_n = n.sqrt();
    let lambda = 6.0 / 5.0;
    let mut m = 1.0f64;
    let mut total_iterations = 0usize;
    let mut rounds = 0usize;
    // BBHT: once m has saturated at √N for a few rounds, an absent
    // solution would have been found; cap the work at 9√N iterations
    // (comfortably above the 4√N expectation bound in the paper).
    let budget = (9.0 * sqrt_n).ceil() as usize + 9;
    while total_iterations <= budget {
        rounds += 1;
        let j = rng.gen_range(0..(m.floor() as usize).max(1));
        total_iterations += j;
        let measured = sim.sample(j, rng);
        if sim.is_marked(measured) {
            return BbhtResult {
                found: Some(measured),
                total_iterations,
                rounds,
            };
        }
        m = (lambda * m).min(sqrt_n);
    }
    BbhtResult {
        found: None,
        total_iterations,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::averaged_success;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planted(n: usize, ts: &[usize]) -> GroverSim {
        let mut marked = vec![false; n];
        for &t in ts {
            marked[t] = true;
        }
        GroverSim::new(marked)
    }

    #[test]
    fn detection_probability_matches_closed_form() {
        let n = 64usize;
        let m = 8usize; // √64
        for t in [1usize, 3, 10, 32, 63] {
            let sim = planted(n, &(0..t).map(|i| (5 * i + 1) % n).collect::<Vec<_>>());
            let actual_t = sim.num_marked();
            let exact = random_j_detection_probability(&sim, m);
            let formula = averaged_success(m, actual_t, n);
            assert!(
                (exact - formula).abs() < 1e-9,
                "t={actual_t}: {exact} vs {formula}"
            );
            assert!(
                exact >= 0.25 - 1e-12,
                "paper bound violated at t={actual_t}"
            );
        }
    }

    #[test]
    fn detection_samples_track_probability() {
        let n = 64usize;
        let sim = planted(n, &[7, 21, 40]);
        let m = 8usize;
        let p = random_j_detection_probability(&sim, m);
        let mut rng = StdRng::seed_from_u64(23);
        let trials = 3000;
        let hits = (0..trials)
            .filter(|_| random_j_detection(&sim, m, &mut rng).detected)
            .count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - p).abs() < 0.03, "freq {freq} vs exact {p}");
    }

    #[test]
    fn bbht_finds_single_marked() {
        let n = 256usize;
        let sim = planted(n, &[99]);
        let mut rng = StdRng::seed_from_u64(31);
        let mut total = 0usize;
        for _ in 0..30 {
            let r = bbht_search(&sim, &mut rng);
            assert_eq!(r.found, Some(99));
            total += r.total_iterations;
        }
        // Expected ≲ 4√(N/t) = 64 per search; allow generous slack.
        assert!(total / 30 < 200, "mean iterations {}", total / 30);
    }

    #[test]
    fn bbht_with_many_marked_is_fast() {
        let n = 256usize;
        let sim = planted(n, &(0..64).map(|i| i * 4).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(37);
        let r = bbht_search(&sim, &mut rng);
        assert!(r.found.is_some());
        assert!(sim.is_marked(r.found.expect("found")));
        assert!(r.total_iterations < 40);
    }

    #[test]
    fn bbht_gives_up_when_empty() {
        let sim = GroverSim::new(vec![false; 64]);
        let mut rng = StdRng::seed_from_u64(41);
        let r = bbht_search(&sim, &mut rng);
        assert_eq!(r.found, None);
        assert!(r.total_iterations >= 72, "should exhaust the budget");
    }

    #[test]
    fn detection_outcome_fields_consistent() {
        let sim = planted(16, &[3]);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let out = random_j_detection(&sim, 4, &mut rng);
            assert!(out.j < 4);
            assert!(out.measured < 16);
            assert_eq!(out.detected, out.measured == 3);
        }
    }
}
