//! Fixed-point ("π/3") amplitude amplification.
//!
//! Standard Grover rotation overshoots: past the optimal iteration count
//! the success probability *falls* (the paper's random-`j` trick exists
//! precisely to average this out when `t` is unknown). Grover's π/3
//! fixed-point iteration replaces the ±1 phases by `e^{iπ/3}` on both
//! reflections; one application maps failure probability `δ = 1 − a` to
//! `δ³`, so iterating **monotonically** drives success to 1 regardless of
//! the (unknown) initial `a` — at the cost of losing the quadratic
//! speed-up. Implemented here as the second half of the unknown-`t`
//! ablation: BBHT keeps the speed-up with probabilistic guarantees,
//! fixed-point trades speed for monotonicity.
//!
//! Recursion (Grover 2005): `U_{m+1} = U_m R_s(π/3) U_m† R_f(π/3) U_m`
//! with `U_0 = A`; applied to states, each level cubes the failure
//! probability. We implement the state-level recursion directly.

use oqsc_quantum::complex::Complex;
use oqsc_quantum::{QuantumBackend, StateVector};

/// Fixed-point amplifier over an explicit marked set, in any backend
/// (dense by default).
#[derive(Clone, Debug)]
pub struct FixedPointAmplifier<B: QuantumBackend = StateVector> {
    psi: B,
    marked: Vec<bool>,
}

impl<B: QuantumBackend> FixedPointAmplifier<B> {
    /// Creates the amplifier from the initial state and marked set (the
    /// backend follows the initial state).
    pub fn new(psi: B, marked: Vec<bool>) -> Self {
        assert_eq!(marked.len(), psi.dim());
        FixedPointAmplifier { psi, marked }
    }

    /// Initial success probability `a`.
    pub fn initial_success(&self) -> f64 {
        success_of(&self.psi, &self.marked)
    }

    /// The state after `levels` of the π/3 recursion (state grows as
    /// `3^levels` applications of the base preparation; keep
    /// `levels ≤ 6`).
    pub fn state_after(&self, levels: u32) -> B {
        assert!(levels <= 6, "3^levels base applications");
        self.recurse(levels)
    }

    /// Success probability after `levels` of recursion; analytically
    /// `1 − (1 − a)^{3^levels}`.
    pub fn success_after(&self, levels: u32) -> f64 {
        success_of(&self.state_after(levels), &self.marked)
    }

    /// The analytic prediction `1 − δ^{3^levels}`.
    pub fn predicted_success(&self, levels: u32) -> f64 {
        let delta = 1.0 - self.initial_success();
        1.0 - delta.powi(3i32.pow(levels))
    }

    fn recurse(&self, level: u32) -> B {
        if level == 0 {
            return self.psi.clone();
        }
        // |u⟩ = U_{m-1}|0⟩ (as a state: the previous level's output).
        let u = self.recurse(level - 1);
        // R_f(π/3): phase e^{iπ/3} on marked ("flawed" convention:
        // Grover's paper phases the *target*; either sign convention gives
        // the δ³ contraction — tests pin the numbers).
        let mut s = u.clone();
        let phase = Complex::from_phase(std::f64::consts::PI / 3.0);
        let marked = &self.marked;
        s.phase_if(|b| marked[b], phase);
        // U_m = U_{m-1} R_s(π/3) U_{m-1}† R_f(π/3) U_{m-1}:
        // the middle operator R_s(π/3) acts as
        // I + (e^{iπ/3} − 1)|u⟩⟨u| in state space.
        let overlap = u.inner(&s);
        let coeff = (phase - Complex::real(1.0)) * overlap;
        // s ← s + coeff·u (unitary up to rounding; renormalize to match
        // the from_amplitudes semantics of the dense-only implementation).
        s.add_scaled(&u, coeff);
        s.normalize();
        s
    }
}

fn success_of<B: QuantumBackend>(state: &B, marked: &[bool]) -> f64 {
    state.probability_where(|b| marked[b])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_case(width: usize, marks: &[usize]) -> FixedPointAmplifier {
        let mut marked = vec![false; 1 << width];
        for &m in marks {
            marked[m] = true;
        }
        FixedPointAmplifier::new(StateVector::uniform(width), marked)
    }

    #[test]
    fn one_level_cubes_the_failure_probability() {
        for (width, marks) in [
            (3usize, vec![1usize]),
            (4, vec![2, 9]),
            (4, vec![0, 5, 10, 15]),
        ] {
            let amp = uniform_case(width, &marks);
            let a = amp.initial_success();
            let got = amp.success_after(1);
            let want = 1.0 - (1.0 - a).powi(3);
            assert!(
                (got - want).abs() < 1e-9,
                "width={width}: {got} vs {want} (a = {a})"
            );
        }
    }

    #[test]
    fn success_is_monotone_in_levels() {
        let amp = uniform_case(4, &[7]);
        let mut prev = amp.initial_success();
        for level in 1..=4u32 {
            let s = amp.success_after(level);
            assert!(s >= prev - 1e-12, "level {level}: {prev} -> {s}");
            assert!((s - amp.predicted_success(level)).abs() < 1e-9);
            prev = s;
        }
        assert!(
            prev > 0.85,
            "four levels from 1/16 should be strong: {prev}"
        );
    }

    #[test]
    fn no_overshoot_unlike_plain_grover() {
        // Plain Grover from a = 1/4 overshoots after one iteration
        // (sin²(3θ) with θ = π/6 gives exactly 1 then falls); fixed-point
        // never falls.
        let amp = uniform_case(4, &[0, 1, 2, 3]); // a = 1/4
        let s1 = amp.success_after(1);
        let s2 = amp.success_after(2);
        assert!(s2 >= s1);
        assert!((s1 - (1.0 - 0.75f64.powi(3))).abs() < 1e-9);
    }

    #[test]
    fn norm_preserved() {
        let amp = uniform_case(3, &[5]);
        for level in 0..=3u32 {
            assert!((amp.state_after(level).norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_marked_stays_at_zero() {
        let amp = FixedPointAmplifier::new(StateVector::uniform(3), vec![false; 8]);
        assert_eq!(amp.initial_success(), 0.0);
        assert!(amp.success_after(2) < 1e-12);
    }
}
