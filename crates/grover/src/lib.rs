//! # oqsc-grover — Grover search and the BBHT unknown-`t` analysis
//!
//! Procedure A3 of the paper is an online implementation of Grover search
//! over the intersection predicate `x_i ∧ y_i`, using the randomized
//! iteration count of Boyer–Brassard–Høyer–Tapp because the number of
//! solutions `t` is unknown. This crate provides:
//!
//! * [`analysis`] — the closed forms: `sin²((2j+1)θ)` success, the paper's
//!   averaged bound `1/2 − sin(4Mθ)/(4M sin 2θ) ≥ 1/4`, optimal iteration
//!   counts;
//! * [`search`] — exact state-vector Grover simulation over explicit
//!   marked sets;
//! * [`bbht`] — single-shot random-`j` detection (what A3 uses) and the
//!   full BBHT search loop with growing budgets;
//! * [`amplitude`] — generalized amplitude amplification from arbitrary
//!   initial states (the paper's remark on boosting the one-sided
//!   constant).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod amplitude;
pub mod analysis;
pub mod bbht;
pub mod fixed_point;
pub mod search;

pub use amplitude::{iterations_to_reach, AmplitudeAmplifier};
pub use analysis::{averaged_success, grover_angle, optimal_iterations, success_after};
pub use bbht::{
    bbht_search, random_j_detection, random_j_detection_probability, BbhtResult, DetectionOutcome,
};
pub use fixed_point::FixedPointAmplifier;
pub use search::GroverSim;
