//! Generalized amplitude amplification.
//!
//! The paper remarks (after Definition 2.3) that the one-sided success
//! constant "can be increased by performing amplitude amplification on
//! both the classical and the quantum parts of the online machine". This
//! module supplies the quantum half in full generality
//! (Brassard–Høyer–Mosca–Tapp): given *any* initial state `|ψ⟩ = A|0⟩`
//! with success amplitude `sin θ_a = √a` on a marked subspace, the
//! operator `Q = −A S₀ A† S_f` rotates by `2θ_a` per application, so `j`
//! applications reach success probability `sin²((2j+1)θ_a)`.
//!
//! Reflections are applied directly from the stored `|ψ⟩`
//! (`R_ψ = 2|ψ⟩⟨ψ| − I`), so no circuit for `A` is needed; Grover search
//! is the special case `|ψ⟩ = H^{⊗n}|0⟩`, which the tests verify.

use crate::analysis::grover_angle;
use oqsc_quantum::complex::ONE;
use oqsc_quantum::{QuantumBackend, StateVector};

/// Amplitude amplification over an explicit marked set, from an arbitrary
/// initial state, in any backend (dense by default).
#[derive(Clone, Debug)]
pub struct AmplitudeAmplifier<B: QuantumBackend = StateVector> {
    psi: B,
    marked: Vec<bool>,
}

impl AmplitudeAmplifier<StateVector> {
    /// Standard Grover: uniform initial state over `width` qubits.
    pub fn grover(width: usize, marked: Vec<bool>) -> Self {
        AmplitudeAmplifier::new(StateVector::uniform(width), marked)
    }
}

impl<B: QuantumBackend> AmplitudeAmplifier<B> {
    /// Creates the amplifier (the backend follows the initial state).
    ///
    /// # Panics
    /// If `marked.len() != 2^{num_qubits}`.
    pub fn new(psi: B, marked: Vec<bool>) -> Self {
        assert_eq!(marked.len(), psi.dim(), "marked set must cover the space");
        AmplitudeAmplifier { psi, marked }
    }

    /// Standard Grover in any backend: uniform initial state over `width`
    /// qubits.
    pub fn grover_in(width: usize, marked: Vec<bool>) -> Self {
        AmplitudeAmplifier::new(B::uniform(width), marked)
    }

    /// The initial success probability `a = Σ_marked |ψ_b|²`.
    pub fn initial_success(&self) -> f64 {
        let marked = &self.marked;
        self.psi.probability_where(|b| marked[b])
    }

    /// The rotation angle `θ_a = asin(√a)`.
    pub fn angle(&self) -> f64 {
        self.initial_success().sqrt().min(1.0).asin()
    }

    /// Predicted success probability after `j` iterations:
    /// `sin²((2j+1)θ_a)`.
    pub fn predicted_success(&self, j: usize) -> f64 {
        ((2 * j + 1) as f64 * self.angle()).sin().powi(2)
    }

    /// The iteration count maximizing single-shot success.
    pub fn optimal_iterations(&self) -> usize {
        let theta = self.angle();
        if theta <= 0.0 {
            return 0;
        }
        (std::f64::consts::FRAC_PI_4 / theta).floor() as usize
    }

    /// Applies `Q = −R_ψ · S_f` once to `state` (global phase folded into
    /// the reflection sign convention, which the success statistics do not
    /// see).
    pub fn iterate(&self, state: &mut B) {
        // Oracle: phase −1 on marked basis states.
        let marked = &self.marked;
        state.phase_if(|b| marked[b], -ONE);
        // Reflection about ψ: s ← 2⟨ψ|s⟩·ψ − s.
        state.reflect_about(&self.psi);
    }

    /// Exact success probability after `j` iterations from `|ψ⟩`.
    pub fn success_after(&self, j: usize) -> f64 {
        let mut s = self.psi.clone();
        for _ in 0..j {
            self.iterate(&mut s);
        }
        let marked = &self.marked;
        s.probability_where(|b| marked[b])
    }
}

/// Boosts a one-sided procedure with initial success `a` to at least
/// `target` by choosing the iteration count from the analytic rotation
/// (the "quantum part" of the paper's amplification remark). Returns the
/// iteration count, or `None` when `a = 0`.
pub fn iterations_to_reach(a: f64, target: f64) -> Option<usize> {
    if a <= 0.0 {
        return None;
    }
    if a >= target {
        return Some(0);
    }
    let theta = a.sqrt().min(1.0).asin();
    // smallest j with sin²((2j+1)θ) ≥ target (before overshooting π/2).
    let mut j = 0usize;
    loop {
        let s = ((2 * j + 1) as f64 * theta).sin().powi(2);
        if s >= target {
            return Some(j);
        }
        if (2 * (j + 1) + 1) as f64 * theta > std::f64::consts::FRAC_PI_2 {
            // The peak is the best achievable in one shot.
            return Some(j + 1);
        }
        j += 1;
    }
}

/// Relates the amplifier to the paper's `t`-of-`N` setting: for the
/// uniform start, `θ_a` must equal [`grover_angle`]`(t, N)`.
pub fn uniform_angle_consistency(t: usize, n: usize) -> f64 {
    let mut marked = vec![false; n];
    for slot in marked.iter_mut().take(t) {
        *slot = true;
    }
    let amp = AmplitudeAmplifier::grover(n.trailing_zeros() as usize, marked);
    (amp.angle() - grover_angle(t, n)).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_quantum::Gate;

    #[test]
    fn grover_special_case_matches_closed_form() {
        let n = 64usize;
        let mut marked = vec![false; n];
        marked[17] = true;
        marked[40] = true;
        let amp = AmplitudeAmplifier::grover(6, marked);
        assert!((amp.initial_success() - 2.0 / 64.0).abs() < 1e-12);
        for j in [0usize, 1, 2, 3, 5] {
            let exact = amp.success_after(j);
            let predicted = amp.predicted_success(j);
            assert!(
                (exact - predicted).abs() < 1e-9,
                "j={j}: {exact} vs {predicted}"
            );
        }
    }

    #[test]
    fn angle_consistency_with_grover_module() {
        for (t, n) in [(1usize, 16usize), (3, 16), (8, 64)] {
            assert!(uniform_angle_consistency(t, n) < 1e-12);
        }
    }

    #[test]
    fn amplification_from_biased_initial_state() {
        // Initial state with non-uniform amplitudes: Ry-rotated qubits.
        let mut psi = StateVector::zero(3);
        psi.apply(&Gate::Ry(0, 0.7));
        psi.apply(&Gate::Ry(1, 1.1));
        psi.apply(&Gate::Ry(2, 0.3));
        let marked: Vec<bool> = (0..8).map(|b| b == 0b011).collect();
        let amp = AmplitudeAmplifier::new(psi, marked);
        let a = amp.initial_success();
        assert!(a > 0.0 && a < 0.5);
        // One shot at the optimal count beats the initial probability and
        // matches the rotation formula.
        let j = amp.optimal_iterations();
        let boosted = amp.success_after(j);
        assert!((boosted - amp.predicted_success(j)).abs() < 1e-9);
        assert!(boosted > a, "amplification must help: {a} -> {boosted}");
        assert!(boosted > 0.75);
    }

    #[test]
    fn iterate_preserves_norm() {
        let amp = AmplitudeAmplifier::grover(4, (0..16).map(|b| b % 5 == 0).collect());
        let mut s = StateVector::uniform(4);
        for _ in 0..7 {
            amp.iterate(&mut s);
            assert!((s.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn iterations_to_reach_targets() {
        // Already above target.
        assert_eq!(iterations_to_reach(0.5, 0.4), Some(0));
        // Impossible.
        assert_eq!(iterations_to_reach(0.0, 0.5), None);
        // The paper's setting: boost 1/4 to 2/3.
        let j = iterations_to_reach(0.25, 2.0 / 3.0).expect("reachable");
        let theta = 0.5f64.asin();
        assert!(((2 * j + 1) as f64 * theta).sin().powi(2) >= 2.0 / 3.0);
        assert!(j <= 2);
    }

    #[test]
    fn zero_marked_never_amplifies() {
        let amp = AmplitudeAmplifier::grover(3, vec![false; 8]);
        assert_eq!(amp.initial_success(), 0.0);
        assert_eq!(amp.optimal_iterations(), 0);
        assert!(amp.success_after(3) < 1e-12);
    }
}
