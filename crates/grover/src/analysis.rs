//! Closed-form Grover success probabilities.
//!
//! With `t` marked items out of `N` and `θ` defined by `sin²θ = t/N`
//! (`0 < θ < π/2`), `j` Grover iterations take the uniform state to success
//! probability `sin²((2j+1)θ)` (Boyer–Brassard–Høyer–Tapp). Procedure A3
//! picks `j` uniformly from `{0, …, M−1}` with `M = 2^k = √N`; the paper
//! quotes the resulting averaged detection probability
//!
//! ```text
//! P[measure 1] = 1/2 − sin(4Mθ) / (4M sin 2θ)  ≥  1/4,
//! ```
//!
//! valid for every `0 < t < N`. These closed forms are compared against
//! exact state-vector simulation in experiment F2.

/// The Grover angle `θ = asin(√(t/N))`.
///
/// # Panics
/// If `t > n` or `n = 0`.
pub fn grover_angle(t: usize, n: usize) -> f64 {
    assert!(n > 0 && t <= n, "need 0 ≤ t ≤ n, n > 0");
    ((t as f64 / n as f64).sqrt()).asin()
}

/// Success probability after exactly `j` iterations: `sin²((2j+1)θ)`.
pub fn success_after(j: usize, t: usize, n: usize) -> f64 {
    let theta = grover_angle(t, n);
    ((2 * j + 1) as f64 * theta).sin().powi(2)
}

/// The iteration count maximizing single-shot success:
/// `⌊π/(4θ)⌋` (0 when `t = 0`).
pub fn optimal_iterations(t: usize, n: usize) -> usize {
    if t == 0 {
        return 0;
    }
    let theta = grover_angle(t, n);
    (std::f64::consts::FRAC_PI_4 / theta).floor() as usize
}

/// The paper's averaged detection probability for `j` uniform in
/// `{0, …, m−1}`:
/// `(1/m) Σ_j sin²((2j+1)θ) = 1/2 − sin(4mθ)/(4m sin 2θ)`.
///
/// Returns 0 when `t = 0` and 1 when `t = n` (degenerate angles).
pub fn averaged_success(m: usize, t: usize, n: usize) -> f64 {
    assert!(m >= 1);
    if t == 0 {
        return 0.0;
    }
    if t == n {
        return 1.0;
    }
    let theta = grover_angle(t, n);
    0.5 - (4.0 * m as f64 * theta).sin() / (4.0 * m as f64 * (2.0 * theta).sin())
}

/// Direct finite-sum version of [`averaged_success`] (used to validate the
/// closed form).
pub fn averaged_success_sum(m: usize, t: usize, n: usize) -> f64 {
    (0..m).map(|j| success_after(j, t, n)).sum::<f64>() / m as f64
}

/// The paper's lower bound: for `M = √N` and every `0 < t < N`,
/// `averaged_success(M, t, N) ≥ 1/4`. Returns the margin
/// `averaged_success − 1/4` (non-negative when the bound holds).
pub fn paper_bound_margin(k: u32) -> f64 {
    let n = 1usize << (2 * k);
    let m = 1usize << k;
    (1..n)
        .map(|t| averaged_success(m, t, n) - 0.25)
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn angle_edges() {
        assert_eq!(grover_angle(0, 16), 0.0);
        assert!((grover_angle(16, 16) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((grover_angle(4, 16) - std::f64::consts::FRAC_PI_6).abs() < 1e-12);
        // asin(1/2)
    }

    #[test]
    fn success_zero_iterations_is_t_over_n() {
        // sin²θ = t/N.
        for (t, n) in [(1usize, 16usize), (3, 16), (8, 16), (5, 32)] {
            assert!((success_after(0, t, n) - t as f64 / n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn single_marked_item_peaks_near_optimal() {
        let n = 1024;
        let j_opt = optimal_iterations(1, n);
        let p_opt = success_after(j_opt, 1, n);
        assert!(p_opt > 0.99, "optimal success {p_opt}");
        assert!(success_after(0, 1, n) < 0.01);
        // Overshooting past the peak reduces success.
        assert!(success_after(2 * j_opt + 1, 1, n) < p_opt);
    }

    #[test]
    fn closed_form_matches_finite_sum() {
        for n in [16usize, 64, 256] {
            let m = (n as f64).sqrt() as usize;
            for t in [1usize, 2, n / 4, n / 2, n - 1] {
                let closed = averaged_success(m, t, n);
                let summed = averaged_success_sum(m, t, n);
                assert!(
                    (closed - summed).abs() < 1e-10,
                    "n={n} t={t}: {closed} vs {summed}"
                );
            }
        }
    }

    #[test]
    fn paper_bound_holds_for_simulable_k() {
        for k in 1..=6u32 {
            let margin = paper_bound_margin(k);
            assert!(
                margin >= -1e-12,
                "k={k}: averaged success dips below 1/4 by {margin}"
            );
        }
    }

    #[test]
    fn degenerate_t_values() {
        assert_eq!(averaged_success(4, 0, 16), 0.0);
        assert_eq!(averaged_success(4, 16, 16), 1.0);
        assert_eq!(optimal_iterations(0, 16), 0);
    }

    #[test]
    fn full_marking_always_succeeds() {
        for j in 0..5 {
            assert!((success_after(j, 16, 16) - 1.0).abs() < 1e-9);
        }
    }

    proptest! {
        #[test]
        fn prop_averaged_in_unit_interval(t in 1usize..255, m in 1usize..64) {
            let n = 256usize;
            let p = averaged_success(m, t, n);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        }

        #[test]
        fn prop_closed_form_equals_sum(t in 1usize..63, m in 1usize..20) {
            let n = 64usize;
            prop_assert!((averaged_success(m, t, n) - averaged_success_sum(m, t, n)).abs() < 1e-9);
        }
    }
}
