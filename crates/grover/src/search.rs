//! Exact simulation of Grover search over an explicit marked set.
//!
//! This is the engine behind procedure A3's analysis: a phase oracle for
//! the marked predicate plus the reflection about the mean. The simulation
//! is exact (dense state vector), so success probabilities can be compared
//! digit-for-digit with the closed forms in [`crate::analysis`].

use oqsc_quantum::complex::ONE;
use oqsc_quantum::{QuantumBackend, StateVector};
use rand::Rng;

/// A Grover search instance over `N = marked.len()` items (power of two).
#[derive(Clone, Debug)]
pub struct GroverSim {
    width: usize,
    marked: Vec<bool>,
}

impl GroverSim {
    /// Creates a search over the given marked set.
    ///
    /// # Panics
    /// If `marked.len()` is not a power of two ≥ 2.
    pub fn new(marked: Vec<bool>) -> Self {
        assert!(
            marked.len().is_power_of_two() && marked.len() >= 2,
            "domain must be a power of two ≥ 2"
        );
        let width = marked.len().trailing_zeros() as usize;
        GroverSim { width, marked }
    }

    /// Domain size `N`.
    pub fn domain(&self) -> usize {
        self.marked.len()
    }

    /// Number of marked items `t`.
    pub fn num_marked(&self) -> usize {
        self.marked.iter().filter(|&&b| b).count()
    }

    /// Register width `log₂ N`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The state after `iterations` Grover iterations from uniform, in the
    /// dense reference backend.
    pub fn state_after(&self, iterations: usize) -> StateVector {
        self.state_after_in(iterations)
    }

    /// The state after `iterations` Grover iterations from uniform, in any
    /// backend.
    pub fn state_after_in<B: QuantumBackend>(&self, iterations: usize) -> B {
        let mut s = B::uniform(self.width);
        for _ in 0..iterations {
            self.iterate(&mut s);
        }
        s
    }

    /// One Grover iteration: phase oracle, then inversion about the mean.
    pub fn iterate<B: QuantumBackend>(&self, s: &mut B) {
        // Oracle: negate marked amplitudes.
        s.phase_if(|b| self.marked[b], -ONE);
        // Diffusion: H^{⊗w} · (phase flip on ≠0) · H^{⊗w}.
        let qs: Vec<usize> = (0..self.width).collect();
        s.apply_hadamard_all(&qs);
        s.phase_if(|b| b != 0, -ONE);
        s.apply_hadamard_all(&qs);
    }

    /// Exact probability that measuring after `iterations` yields a marked
    /// item.
    pub fn success_probability(&self, iterations: usize) -> f64 {
        self.state_after(iterations)
            .probability_where(|b| self.marked[b])
    }

    /// Samples a measured index after `iterations`.
    pub fn sample<R: Rng + ?Sized>(&self, iterations: usize, rng: &mut R) -> usize {
        self.state_after(iterations).sample_basis(rng)
    }

    /// Whether index `i` is marked (oracle access, also used by classical
    /// baselines so both pay the same query interface).
    pub fn is_marked(&self, i: usize) -> bool {
        self.marked[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{optimal_iterations, success_after};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_simulation_matches_closed_form() {
        let n = 64usize;
        for t in [1usize, 2, 5, 16, 63] {
            let mut marked = vec![false; n];
            for i in 0..t {
                marked[(i * 7 + 3) % n] = true;
            }
            // Keep exactly t marked (indices may collide for large t).
            let actual_t = marked.iter().filter(|&&b| b).count();
            let sim = GroverSim::new(marked);
            for j in [0usize, 1, 2, 5] {
                let exact = sim.success_probability(j);
                let formula = success_after(j, actual_t, n);
                assert!(
                    (exact - formula).abs() < 1e-9,
                    "t={actual_t} j={j}: {exact} vs {formula}"
                );
            }
        }
    }

    #[test]
    fn optimal_iterations_almost_certain() {
        let n = 256usize;
        let mut marked = vec![false; n];
        marked[137] = true;
        let sim = GroverSim::new(marked);
        let j = optimal_iterations(1, n);
        assert!(sim.success_probability(j) > 0.99);
    }

    #[test]
    fn unmarked_domain_never_succeeds() {
        let sim = GroverSim::new(vec![false; 16]);
        assert_eq!(sim.num_marked(), 0);
        for j in 0..6 {
            assert!(sim.success_probability(j) < 1e-12);
        }
    }

    #[test]
    fn sampling_finds_planted_item() {
        let n = 64usize;
        let mut marked = vec![false; n];
        marked[42] = true;
        let sim = GroverSim::new(marked);
        let j = optimal_iterations(1, n);
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..200).filter(|_| sim.sample(j, &mut rng) == 42).count();
        assert!(hits > 180, "hits = {hits}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_domain_panics() {
        GroverSim::new(vec![false; 12]);
    }

    #[test]
    fn geometry_accessors() {
        let sim = GroverSim::new(vec![true, false, false, true]);
        assert_eq!(sim.domain(), 4);
        assert_eq!(sim.width(), 2);
        assert_eq!(sim.num_marked(), 2);
        assert!(sim.is_marked(0));
        assert!(!sim.is_marked(1));
    }
}
