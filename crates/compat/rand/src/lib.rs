//! Offline drop-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors
//! the few entry points it needs — [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`] — behind the same paths as the real crate. The
//! generator is xoshiro256++ seeded through SplitMix64, which passes the
//! statistical checks the test suite makes (frequency tests at the few-σ
//! level over 10³–10⁴ draws). Swap this path dependency for the real
//! `rand` in `[workspace.dependencies]` when a registry is available; no
//! source change is needed.

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Low-level uniform bit generation (the `rand` 0.8 `RngCore` subset).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A 53-bit-precision uniform draw from `[0, 1)`.
fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly "at standard" (`rand`'s `Standard`
/// distribution): full range for integers, `[0, 1)` for floats, fair coin
/// for `bool`.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        uniform_f64(rng)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * uniform_f64(rng)
    }
}

/// User-facing sampling methods (the `rand` 0.8 `Rng` extension-trait
/// subset), blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`StandardSample`] type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        uniform_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (`[u8; 32]` for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion (the
    /// construction `rand` documents for this method).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Not the same stream as `rand`'s ChaCha12-based `StdRng`; everything
    /// in this workspace treats seeded streams as arbitrary-but-fixed, so
    /// only statistical quality matters.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[8 * i..8 * i + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro must not start at the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v: usize = rng.gen_range(0..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..500 {
            let v: i64 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&v));
            let f: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            assert!((0.0..std::f64::consts::TAU).contains(&f));
        }
    }

    #[test]
    fn gen_bool_and_f64_frequencies() {
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 20_000;
        let heads = (0..trials).filter(|_| rng.gen_bool(0.3)).count();
        let freq = heads as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
        let mean: f64 = (0..trials).map(|_| rng.gen::<f64>()).sum::<f64>() / trials as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> (bool, f64, u64) {
            (rng.gen(), rng.gen(), rng.gen())
        }
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut dyn RngCore = &mut rng;
        let _ = draw(dynrng);
    }

    #[test]
    fn fill_bytes_fills_exactly() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
