//! Offline drop-in for the subset of the `lz4_flex` block API used by this
//! workspace: raw LZ4 *block* compression (`block::compress` /
//! `block::decompress`) — no frame headers, no checksums. Swap this path
//! dependency for the real `lz4_flex` in `[workspace.dependencies]` when a
//! registry is available.
//!
//! The encoder is a greedy single-pass hash-table matcher producing
//! standard LZ4 sequences (token byte with literal-length / match-length
//! nibbles, 255-extension bytes, 2-byte little-endian match offsets,
//! minimum match length 4, literals-only final sequence). The decoder is
//! written for hostile input: every read is bounds-checked, the output
//! never grows past the declared uncompressed size, and declared sizes
//! beyond LZ4's maximum expansion ratio are rejected *before* any
//! allocation. A corrupted block therefore either fails with a typed
//! [`block::DecompressError`] or decodes to exactly the declared length
//! (callers that need bit-exactness — the checkpoint store — additionally
//! hash the decoded bytes).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use block::{compress, decompress, DecompressError};

/// LZ4 block format: compress and decompress raw blocks.
pub mod block {
    use std::fmt;

    /// Minimum length of an LZ4 match.
    const MIN_MATCH: usize = 4;
    /// The last five bytes of a block must be literals.
    const LAST_LITERALS: usize = 5;
    /// Matches must not start within the last twelve bytes of the input.
    const MFLIMIT: usize = 12;
    /// Match offsets are 16-bit and non-zero.
    const MAX_OFFSET: usize = 0xFFFF;
    /// 2^13-entry hash table: 32 KiB of `u32` slots per compress call.
    const HASH_BITS: u32 = 13;

    /// Decoding failed: the block is truncated, corrupt, or does not
    /// decode to the declared uncompressed size.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum DecompressError {
        /// The input ended inside a token, length extension, or offset field.
        ExpectedAnotherByte,
        /// A literal run claimed more bytes than remain in the input.
        LiteralOutOfBounds,
        /// A match offset was zero or reached before the start of the output.
        OffsetOutOfBounds,
        /// The decoded output length does not equal the declared size.
        UncompressedSizeDiffers {
            /// Declared uncompressed size.
            expected: usize,
            /// Length the block actually decoded to (or would have exceeded).
            actual: usize,
        },
        /// The declared size exceeds LZ4's maximum expansion of the input,
        /// so the block is rejected before allocating output space.
        UncompressedSizeTooLarge {
            /// Declared uncompressed size.
            declared: usize,
            /// Largest size a block of this input length can decode to.
            max: usize,
        },
    }

    impl fmt::Display for DecompressError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                DecompressError::ExpectedAnotherByte => {
                    write!(f, "compressed block ended mid-field")
                }
                DecompressError::LiteralOutOfBounds => {
                    write!(f, "literal run exceeds compressed block")
                }
                DecompressError::OffsetOutOfBounds => {
                    write!(f, "match offset outside decoded output")
                }
                DecompressError::UncompressedSizeDiffers { expected, actual } => {
                    write!(f, "block decoded to {actual} bytes, expected {expected}")
                }
                DecompressError::UncompressedSizeTooLarge { declared, max } => {
                    write!(
                        f,
                        "declared uncompressed size {declared} exceeds the \
                         {max}-byte expansion bound for this block"
                    )
                }
            }
        }
    }

    impl std::error::Error for DecompressError {}

    /// Largest output a block of `input_len` bytes can legally decode to.
    ///
    /// Each 255-extension byte of input contributes at most 255 bytes of
    /// output, so expansion is bounded by ~255x plus slack for the final
    /// token; this caps allocation for hostile declared sizes.
    pub fn max_decompressed_len(input_len: usize) -> usize {
        input_len.saturating_mul(255).saturating_add(64)
    }

    fn hash(seq: u32) -> usize {
        (seq.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
    }

    fn read_u32_le(bytes: &[u8], at: usize) -> u32 {
        u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
    }

    /// Append `n` as a 255-extension run (used when a nibble is 15).
    fn write_len_ext(out: &mut Vec<u8>, n: usize) {
        if n >= 15 {
            let mut rem = n - 15;
            while rem >= 255 {
                out.push(255);
                rem -= 255;
            }
            out.push(rem as u8);
        }
    }

    fn nibble(n: usize) -> u8 {
        if n >= 15 {
            15
        } else {
            n as u8
        }
    }

    /// Final literals-only sequence (no offset, no match part).
    fn emit_literal_run(out: &mut Vec<u8>, literals: &[u8]) {
        out.push(nibble(literals.len()) << 4);
        write_len_ext(out, literals.len());
        out.extend_from_slice(literals);
    }

    fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: u16, match_len: usize) {
        let ml = match_len - MIN_MATCH;
        out.push((nibble(literals.len()) << 4) | nibble(ml));
        write_len_ext(out, literals.len());
        out.extend_from_slice(literals);
        out.extend_from_slice(&offset.to_le_bytes());
        write_len_ext(out, ml);
    }

    /// Compress `input` into a raw LZ4 block.
    ///
    /// Deterministic (greedy matcher, fixed hash table) and loss-free for
    /// any input; incompressible input grows by at most ~0.4% plus a few
    /// bytes, so callers should keep the original when the block is not
    /// strictly smaller.
    pub fn compress(input: &[u8]) -> Vec<u8> {
        let len = input.len();
        let mut out = Vec::with_capacity(len / 2 + 16);
        if len < MFLIMIT {
            emit_literal_run(&mut out, input);
            return out;
        }
        // Hash slots store position + 1 so 0 can mean "empty".
        let mut table = vec![0u32; 1 << HASH_BITS];
        let match_limit = len - LAST_LITERALS;
        let ip_limit = len - MFLIMIT;
        let mut anchor = 0usize;
        let mut ip = 0usize;
        while ip <= ip_limit {
            let seq = read_u32_le(input, ip);
            let slot = hash(seq);
            let cand = table[slot] as usize;
            table[slot] = (ip + 1) as u32;
            if cand != 0 {
                let cand = cand - 1;
                if ip - cand <= MAX_OFFSET && read_u32_le(input, cand) == seq {
                    let mut mlen = MIN_MATCH;
                    while ip + mlen < match_limit && input[cand + mlen] == input[ip + mlen] {
                        mlen += 1;
                    }
                    emit_sequence(&mut out, &input[anchor..ip], (ip - cand) as u16, mlen);
                    ip += mlen;
                    anchor = ip;
                    continue;
                }
            }
            ip += 1;
        }
        emit_literal_run(&mut out, &input[anchor..]);
        out
    }

    /// Read a 255-extension run starting at `*ip`, returning the extra length.
    fn read_len_ext(input: &[u8], ip: &mut usize) -> Result<usize, DecompressError> {
        let mut extra = 0usize;
        loop {
            let b = *input.get(*ip).ok_or(DecompressError::ExpectedAnotherByte)?;
            *ip += 1;
            extra += b as usize;
            if b != 255 {
                return Ok(extra);
            }
        }
    }

    /// Decompress a raw LZ4 block that must decode to exactly
    /// `uncompressed_size` bytes.
    ///
    /// Never panics and never allocates more than `uncompressed_size`
    /// (itself pre-checked against [`max_decompressed_len`]): corrupt or
    /// truncated blocks fail with a typed error. A bit-flipped block *can*
    /// decode successfully to the right length with wrong bytes — callers
    /// needing integrity must verify the decoded bytes (the checkpoint
    /// store hashes them against the record's content key).
    pub fn decompress(input: &[u8], uncompressed_size: usize) -> Result<Vec<u8>, DecompressError> {
        if uncompressed_size > max_decompressed_len(input.len()) {
            return Err(DecompressError::UncompressedSizeTooLarge {
                declared: uncompressed_size,
                max: max_decompressed_len(input.len()),
            });
        }
        if input.is_empty() && uncompressed_size == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(uncompressed_size);
        let mut ip = 0usize;
        loop {
            let token = *input.get(ip).ok_or(DecompressError::ExpectedAnotherByte)?;
            ip += 1;
            let mut lit = (token >> 4) as usize;
            if lit == 15 {
                lit += read_len_ext(input, &mut ip)?;
            }
            let lit_end = ip
                .checked_add(lit)
                .ok_or(DecompressError::LiteralOutOfBounds)?;
            if lit_end > input.len() {
                return Err(DecompressError::LiteralOutOfBounds);
            }
            if out.len() + lit > uncompressed_size {
                return Err(DecompressError::UncompressedSizeDiffers {
                    expected: uncompressed_size,
                    actual: out.len() + lit,
                });
            }
            out.extend_from_slice(&input[ip..lit_end]);
            ip = lit_end;
            if ip == input.len() {
                // Final sequence: literals only.
                break;
            }
            if ip + 2 > input.len() {
                return Err(DecompressError::ExpectedAnotherByte);
            }
            let offset = u16::from_le_bytes([input[ip], input[ip + 1]]) as usize;
            ip += 2;
            if offset == 0 || offset > out.len() {
                return Err(DecompressError::OffsetOutOfBounds);
            }
            let mut mlen = (token & 0x0F) as usize;
            if mlen == 15 {
                mlen += read_len_ext(input, &mut ip)?;
            }
            mlen += MIN_MATCH;
            if out.len() + mlen > uncompressed_size {
                return Err(DecompressError::UncompressedSizeDiffers {
                    expected: uncompressed_size,
                    actual: out.len() + mlen,
                });
            }
            // Byte-at-a-time so overlapping matches (offset < length)
            // replicate the just-written bytes, as the format requires.
            let start = out.len() - offset;
            for i in 0..mlen {
                let b = out[start + i];
                out.push(b);
            }
        }
        if out.len() != uncompressed_size {
            return Err(DecompressError::UncompressedSizeDiffers {
                expected: uncompressed_size,
                actual: out.len(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::block::{compress, decompress, max_decompressed_len, DecompressError};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let block = compress(input);
        let back = decompress(&block, input.len()).expect("round trip");
        assert_eq!(back, input, "round trip of {} bytes", input.len());
        block
    }

    fn sample_inputs() -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(0x1234);
        let mut inputs: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"a".to_vec(),
            b"short input".to_vec(),
            vec![0u8; 10_000],
            b"abcd".repeat(500),
            (0..=255u8).collect::<Vec<u8>>().repeat(7),
            [1, 2, 3].repeat(1_000),
        ];
        // Incompressible noise.
        inputs.push((0..4_096).map(|_| rng.gen::<u8>()).collect());
        // The shape the checkpoint store cares about: a mostly-zero dense
        // state vector as raw f64 bit patterns.
        let mut state = vec![0f64; 1 << 10];
        for slot in state.iter_mut().step_by(37) {
            *slot = rng.gen::<f64>();
        }
        inputs.push(
            state
                .iter()
                .flat_map(|a| a.to_bits().to_le_bytes())
                .collect(),
        );
        inputs
    }

    #[test]
    fn round_trips_and_compresses_redundant_inputs() {
        for input in sample_inputs() {
            let block = round_trip(&input);
            if input.len() >= 1_000 && input != block {
                // All the large redundant samples must actually shrink.
                let redundant = input.windows(2).filter(|w| w[0] == w[1]).count();
                if redundant > input.len() / 2 {
                    assert!(
                        block.len() < input.len() / 2,
                        "redundant input compressed {} -> {}",
                        input.len(),
                        block.len()
                    );
                }
            }
        }
    }

    #[test]
    fn overlapping_matches_replicate_bytes() {
        // Period-3 data forces offset (3) < match length: the decoder must
        // copy bytes it has just written.
        let input = [9u8, 7, 5].repeat(2_000);
        round_trip(&input);
    }

    #[test]
    fn every_truncation_of_a_block_is_a_typed_error() {
        for input in sample_inputs() {
            if input.len() < 12 {
                continue;
            }
            let block = compress(&input);
            for cut in 0..block.len() {
                if let Ok(out) = decompress(&block[..cut], input.len()) {
                    panic!(
                        "truncated block ({}/{} bytes) decoded to {} bytes",
                        cut,
                        block.len(),
                        out.len()
                    );
                }
            }
        }
    }

    #[test]
    fn every_bit_flip_errors_or_decodes_to_declared_length() {
        let mut rng = StdRng::seed_from_u64(0xF11);
        let mut state = vec![0f64; 1 << 8];
        for slot in state.iter_mut().step_by(11) {
            *slot = rng.gen::<f64>();
        }
        let input: Vec<u8> = state
            .iter()
            .flat_map(|a| a.to_bits().to_le_bytes())
            .collect();
        let block = compress(&input);
        for flip in 0..block.len() {
            let mut bad = block.clone();
            bad[flip] ^= 0xFF;
            if let Ok(out) = decompress(&bad, input.len()) {
                // Wrong bytes are possible; a wrong length never is.
                assert_eq!(out.len(), input.len(), "flip at {flip}");
            }
        }
    }

    #[test]
    fn hostile_declared_sizes_are_rejected_before_allocation() {
        let input = b"abcd".repeat(64);
        let block = compress(&input);
        let huge = usize::MAX / 2;
        assert!(matches!(
            decompress(&block, huge),
            Err(DecompressError::UncompressedSizeTooLarge { declared, .. }) if declared == huge
        ));
        assert!(huge > max_decompressed_len(block.len()));
        // Off-by-one declared sizes must fail, not silently mis-size.
        assert!(decompress(&block, input.len() + 1).is_err());
        assert!(decompress(&block, input.len() - 1).is_err());
        assert!(decompress(&block, 0).is_err());
    }

    #[test]
    fn empty_and_tiny_inputs_round_trip() {
        assert_eq!(decompress(&compress(&[]), 0).unwrap(), Vec::<u8>::new());
        assert_eq!(decompress(&[], 0).unwrap(), Vec::<u8>::new());
        for n in 1..32usize {
            let input: Vec<u8> = (0..n as u8).collect();
            round_trip(&input);
        }
    }
}
