//! Offline drop-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! The build environment has no registry access, so the bench harness the
//! 8 bench targets rely on — [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — is vendored here
//! with the same call shapes. Measurement is a deliberately simple
//! calibrated-batch wall-clock loop (median of `sample_size` samples with
//! a min/max spread), not criterion's bootstrap statistics; it is accurate
//! enough for before/after comparisons of the simulator's hot loops.
//! Swap the path dependency in `[workspace.dependencies]` for the real
//! crate when a registry is available; no bench-source change is needed.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// work. Re-exported name-compatibly with `criterion::black_box`.
pub fn black_box<T>(dummy: T) -> T {
    std::hint::black_box(dummy)
}

/// Throughput annotation for a benchmark group (recorded and echoed in the
/// report line; no rate math beyond elements/sec is done).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benched routine processes this many logical elements per
    /// iteration.
    Elements(u64),
    /// The benched routine processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name supplies the prefix).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    target_sample_time: Duration,
}

impl Bencher {
    fn new(sample_count: usize, target_sample_time: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
            target_sample_time,
        }
    }

    /// Times `routine`, auto-calibrating the per-sample iteration count so
    /// each sample runs for roughly the configured sample time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration: grow the batch until one batch takes ≥ 1/8 of the
        // sample budget, so short routines are timed over many iterations.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_sample_time / 8 || iters >= 1 << 30 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 8
            } else {
                let scale =
                    (self.target_sample_time.as_nanos() / 8).max(1) / elapsed.as_nanos().max(1);
                (iters * (scale as u64).clamp(2, 8)).max(iters + 1)
            };
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// (median, min, max) nanoseconds per iteration over the samples.
    fn stats_ns(&self) -> Option<(f64, f64, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        Some((median, per_iter[0], per_iter[per_iter.len() - 1]))
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Benchmark driver (the `criterion::Criterion` subset).
pub struct Criterion {
    sample_count: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 15,
            target_sample_time: Duration::from_millis(40),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, None, self.sample_count, self.target_sample_time, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        let (sample_count, target_sample_time) = (self.sample_count, self.target_sample_time);
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            sample_count,
            target_sample_time,
            throughput: None,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_count: usize,
    target_sample_time: Duration,
    mut f: F,
) {
    let mut bencher = Bencher::new(sample_count, target_sample_time);
    f(&mut bencher);
    match bencher.stats_ns() {
        Some((median, lo, hi)) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  thrpt: {:.3} Melem/s", n as f64 * 1_000.0 / median)
                }
                Some(Throughput::Bytes(n)) => {
                    format!(
                        "  thrpt: {:.3} MiB/s",
                        n as f64 * 1_000.0 / median / 1.048_576
                    )
                }
                None => String::new(),
            };
            println!(
                "{id:<50} time: [{} {} {}]{rate}",
                format_ns(lo),
                format_ns(median),
                format_ns(hi),
            );
        }
        None => println!("{id:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_count: usize,
    target_sample_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(
            &full,
            self.throughput,
            self.sample_count,
            self.target_sample_time,
            f,
        );
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report-flush point in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner, name-compatibly with
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups, name-compatibly with
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(5, Duration::from_millis(2));
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc
        });
        let (median, lo, hi) = b.stats_ns().expect("samples recorded");
        assert!(lo <= median && median <= hi);
        assert!(median > 0.0);
    }

    #[test]
    fn group_and_ids_compose() {
        let mut c = Criterion {
            sample_count: 3,
            target_sample_time: Duration::from_millis(1),
        };
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function(BenchmarkId::new("sub", 7), |b| b.iter(|| black_box(7)));
        group.finish();
    }
}
