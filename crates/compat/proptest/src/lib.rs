//! Offline drop-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no registry access, so the property-test
//! entry points the unit tests rely on — the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], [`any`],
//! integer-range and tuple strategies, and [`collection::vec`] — are
//! vendored here with the same call shapes. Cases are generated from a
//! fixed per-case seed (no shrinking; a failure message reports the case
//! number so it can be replayed by running the same test). Swap the path
//! dependency for the real `proptest` when a registry is available.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (`cases` is the only knob the workspace uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The generator handed to strategies (a seeded [`StdRng`]).
pub type TestRng = StdRng;

/// Why a property-test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it does not count as a
    /// failure.
    Reject,
    /// `prop_assert!`-family failure with its message.
    Fail(String),
}

/// Body result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator (the `proptest::strategy::Strategy` subset: sampling
/// only, no value trees or shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy for "any value of `T`" (the `proptest::arbitrary::any`
/// subset: plain `StandardSample` types).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform strategy over all of `T`.
pub fn any<T: rand::StandardSample>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::StandardSample> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_standard(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (S0.0),
    (S0.0, S1.1),
    (S0.0, S1.1, S2.2),
    (S0.0, S1.1, S2.2, S3.3)
);

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as the size argument of [`vec`]: an exact length or
    /// a half-open range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// `proptest::collection::vec`: vectors of `element` values.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` site expects in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

/// Drives one property: samples each strategy `config.cases` times and
/// runs the body, retrying rejected (`prop_assume!`-filtered) cases up to
/// a global budget. Called by the [`proptest!`] expansion; not public API
/// of the real crate.
pub fn run_property<F: FnMut(&mut TestRng) -> TestCaseResult>(
    config: &ProptestConfig,
    name: &str,
    mut case: F,
) {
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(1024);
    while accepted < config.cases {
        assert!(
            attempts < max_attempts,
            "{name}: gave up after {attempts} attempts \
             ({accepted}/{} cases accepted; prop_assume! too strict?)",
            config.cases
        );
        // Deterministic per-case seed, decorrelated from the attempt index.
        let seed =
            0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(attempts) + 1) ^ name.len() as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case #{attempts} (seed {seed}) failed: {msg}")
            }
        }
    }
}

/// The `proptest!` test-family macro (sampling-only subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(&config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::sample(&$strat, rng);)+
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// `prop_assert!`: fails the current case (with file/line context) instead
/// of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "{} at {}:{}",
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

/// `prop_assert_eq!`: equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// `prop_assume!`: filters out cases violating a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            n in 1usize..50,
            xs in crate::collection::vec(any::<bool>(), 3..9),
            pair in (0u8..3, 10u64..20),
        ) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((3..9).contains(&xs.len()));
            prop_assert!(pair.0 < 3 && (10..20).contains(&pair.1));
        }

        #[test]
        fn assume_filters(v in 0usize..10) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics_with_context() {
        crate::run_property(&ProptestConfig::with_cases(4), "always_fails", |_| {
            Err(crate::TestCaseError::Fail("boom".into()))
        });
    }

    #[test]
    fn prop_map_transforms() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let doubled = (1usize..5).prop_map(|v| v * 2);
        for _ in 0..20 {
            let v = doubled.sample(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
    }
}
